//! The `repro serve` protocol: a std-only TCP/NDJSON batch query server
//! over the canonical evaluator and the process-wide cache.
//!
//! ## Wire format
//!
//! Newline-delimited JSON both ways: one flat JSON object per line in,
//! one per line out, responses in request order. A connection is a batch;
//! clients may stream any number of requests and close (or half-close)
//! when done. Requests:
//!
//! ```text
//! {"id":1,"op":"engine","engine":"OPT4E[EN-T]/28nm@2.00GHz"}
//! {"id":2,"op":"layer","engine":"OPT3[EN-T]","m":64,"n":3136,"k":576,"repeats":1,"seed":42}
//! {"id":3,"op":"model","engine":"OPT4E[EN-T]","model":"ResNet18","seed":42}
//! {"id":4,"op":"engine","engine":"OPT4E[EN-T]","precision":"W4"}
//! {"id":5,"op":"roster"}
//! {"id":6,"op":"stats"}
//! {"id":7,"op":"shutdown"}
//! ```
//!
//! The `engine`/`layer`/`model` ops accept an optional `"precision"`
//! field (`"W4"` / `"W8"` / `"W16"` / `"W8xW4"`, or the generic
//! `"W{a}xW{b}a{acc}"` form): the engine is then priced and scheduled at
//! that operand precision, and response labels carry the `@W…` suffix.
//! Omitting it keeps the paper's W8 — byte-identical to the
//! pre-precision protocol.
//!
//! Responses echo the `id` and carry `"ok":true` plus op-specific fields,
//! or `"ok":false` with an `"error"` string. All numeric fields render at
//! fixed precision, so a given request line maps to exactly one response
//! byte string — **batched responses are byte-identical to sequential
//! single-query responses** (property-tested), because every evaluation is
//! a deterministic function of the request (seeds are per-request, never
//! per-connection).
//!
//! ## Concurrency
//!
//! Thread-per-connection over shared state: all connections evaluate
//! through the same [`EngineCache`], so a mixed batch converges to
//! all-hit steady state no matter how clients shard their queries.
//! `shutdown` drains nothing: it answers, stops accepting, and lets
//! in-flight connections finish.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use tpe_workloads::{LayerShape, NetworkModel};

use crate::cache::EngineCache;
use crate::eval::Evaluator;
use crate::roster;
use crate::workload::SweepWorkload;

/// Default seed for sampled evaluations when a request omits `"seed"` —
/// the same default every `repro` experiment uses.
pub const DEFAULT_SEED: u64 = 42;

/// A parsed flat JSON value (the protocol never nests).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON string.
    Str(String),
    /// Any JSON number.
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

/// Parses one flat JSON object (`{"key": value, ...}`; string / number /
/// bool / null values only — the protocol is deliberately nesting-free).
pub fn parse_flat_object(line: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    let skip_ws = |pos: &mut usize| {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    };
    let parse_string = |pos: &mut usize| -> Result<String, String> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = line.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|e| format!("\\u: {e}"))?;
                            *pos += 4;
                            // Standard JSON encodes non-BMP characters as
                            // UTF-16 surrogate pairs (🔥).
                            let scalar = if (0xD800..0xDC00).contains(&code) {
                                if line.get(*pos + 1..*pos + 3) != Some("\\u") {
                                    return Err("high surrogate without a low surrogate".into());
                                }
                                let hex2 =
                                    line.get(*pos + 3..*pos + 7).ok_or("truncated \\u escape")?;
                                let low = u32::from_str_radix(hex2, 16)
                                    .map_err(|e| format!("\\u: {e}"))?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err("invalid low surrogate".into());
                                }
                                *pos += 6;
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(scalar).ok_or("\\u escape is not a scalar value")?,
                            );
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let s = &line[*pos..];
                    let c = s.chars().next().ok_or("bad utf-8")?;
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    };

    skip_ws(&mut pos);
    if bytes.get(pos) != Some(&b'{') {
        return Err("expected `{`".into());
    }
    pos += 1;
    let mut map = BTreeMap::new();
    skip_ws(&mut pos);
    if bytes.get(pos) == Some(&b'}') {
        return Ok(map);
    }
    loop {
        skip_ws(&mut pos);
        let key = parse_string(&mut pos)?;
        skip_ws(&mut pos);
        if bytes.get(pos) != Some(&b':') {
            return Err(format!("expected `:` after key {key:?}"));
        }
        pos += 1;
        skip_ws(&mut pos);
        let value = match bytes.get(pos) {
            Some(b'"') => JsonValue::Str(parse_string(&mut pos)?),
            Some(b't') if line[pos..].starts_with("true") => {
                pos += 4;
                JsonValue::Bool(true)
            }
            Some(b'f') if line[pos..].starts_with("false") => {
                pos += 5;
                JsonValue::Bool(false)
            }
            Some(b'n') if line[pos..].starts_with("null") => {
                pos += 4;
                JsonValue::Null
            }
            Some(b'{') | Some(b'[') => {
                return Err("nested values are not part of the protocol".into())
            }
            Some(_) => {
                let start = pos;
                while pos < bytes.len()
                    && matches!(bytes[pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    pos += 1;
                }
                let num: f64 = line[start..pos]
                    .parse()
                    .map_err(|e| format!("bad number {:?}: {e}", &line[start..pos]))?;
                JsonValue::Num(num)
            }
            None => return Err("truncated object".into()),
        };
        map.insert(key, value);
        skip_ws(&mut pos);
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            Some(b'}') => {
                pos += 1;
                break;
            }
            other => return Err(format!("expected `,` or `}}`, got {other:?}")),
        }
    }
    skip_ws(&mut pos);
    if pos != bytes.len() {
        return Err("trailing bytes after object".into());
    }
    Ok(map)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Typed field access over a parsed request object.
struct Fields(BTreeMap<String, JsonValue>);

impl Fields {
    fn str(&self, key: &str) -> Result<&str, String> {
        match self.0.get(key) {
            Some(JsonValue::Str(s)) => Ok(s),
            Some(_) => Err(format!("field `{key}` must be a string")),
            None => Err(format!("missing field `{key}`")),
        }
    }

    fn uint(&self, key: &str) -> Result<u64, String> {
        match self.0.get(key) {
            Some(JsonValue::Num(n)) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Ok(*n as u64)
            }
            Some(_) => Err(format!("field `{key}` must be a non-negative integer")),
            None => Err(format!("missing field `{key}`")),
        }
    }

    fn uint_or(&self, key: &str, default: u64) -> Result<u64, String> {
        if self.0.contains_key(key) {
            self.uint(key)
        } else {
            Ok(default)
        }
    }
}

/// Handles one request line against `cache`, returning the response line
/// (no trailing newline) and whether the request asked for shutdown.
pub fn handle_line(line: &str, cache: &EngineCache) -> (String, bool) {
    let fields = match parse_flat_object(line) {
        Ok(map) => Fields(map),
        Err(e) => {
            return (
                format!(
                    "{{\"id\":0,\"ok\":false,\"error\":\"{}\"}}",
                    json_escape(&e)
                ),
                false,
            )
        }
    };
    let id = fields.uint_or("id", 0).unwrap_or(0);
    match respond(&fields, cache) {
        Ok((body, is_shutdown)) => (format!("{{\"id\":{id},\"ok\":true,{body}}}"), is_shutdown),
        Err(e) => (
            format!(
                "{{\"id\":{id},\"ok\":false,\"error\":\"{}\"}}",
                json_escape(&e)
            ),
            false,
        ),
    }
}

/// The op-specific response body (without the `id`/`ok` envelope).
fn respond(fields: &Fields, cache: &EngineCache) -> Result<(String, bool), String> {
    let eval = Evaluator::new(cache);
    let op = fields.str("op")?;
    match op {
        "engine" => {
            let spec = resolve_engine(fields)?;
            let body = match eval.price(&spec) {
                Some(p) => format!(
                    "\"op\":\"engine\",\"engine\":\"{}\",\"feasible\":true,\
                     \"area_um2\":{:.3},\"e_active_fj\":{:.4},\"e_idle_fj\":{:.4},\
                     \"instances\":{:.0},\"lanes_total\":{:.0},\"peak_tops\":{:.4}",
                    json_escape(&spec.label()),
                    p.area_um2,
                    p.e_active_fj,
                    p.e_idle_fj,
                    p.instances,
                    p.lanes_total,
                    p.peak_tops
                ),
                None => format!(
                    "\"op\":\"engine\",\"engine\":\"{}\",\"feasible\":false",
                    json_escape(&spec.label())
                ),
            };
            Ok((body, false))
        }
        "layer" => {
            let spec = resolve_engine(fields)?;
            let m = fields.uint("m")? as usize;
            let n = fields.uint("n")? as usize;
            let k = fields.uint("k")? as usize;
            if m == 0 || n == 0 || k == 0 {
                return Err("layer dimensions must be positive".into());
            }
            let repeats = fields.uint_or("repeats", 1)?.max(1) as usize;
            let seed = fields.uint_or("seed", DEFAULT_SEED)?;
            let name = match fields.0.get("workload") {
                Some(JsonValue::Str(s)) => s.clone(),
                Some(_) => return Err("field `workload` must be a string".into()),
                None => format!("{m}x{n}x{k}r{repeats}"),
            };
            let workload = SweepWorkload::Layer(LayerShape::new(&name, m, n, k, repeats));
            let body = match eval.metrics(&spec, &workload, seed) {
                Some(mt) => format!(
                    "\"op\":\"layer\",\"engine\":\"{}\",\"workload\":\"{}\",\"seed\":{seed},\
                     \"feasible\":true,{}",
                    json_escape(&spec.label()),
                    json_escape(&name),
                    metrics_body(&mt)
                ),
                None => format!(
                    "\"op\":\"layer\",\"engine\":\"{}\",\"workload\":\"{}\",\"seed\":{seed},\
                     \"feasible\":false",
                    json_escape(&spec.label()),
                    json_escape(&name)
                ),
            };
            Ok((body, false))
        }
        "model" => {
            let spec = resolve_engine(fields)?;
            let model_name = fields.str("model")?;
            let seed = fields.uint_or("seed", DEFAULT_SEED)?;
            let net = NetworkModel::catalog()
                .into_iter()
                .find(|n| n.name.eq_ignore_ascii_case(model_name))
                .ok_or_else(|| format!("unknown model `{model_name}`"))?;
            let body = match eval.model_report(&spec, &net, seed, crate::MODEL_SAMPLE_CAPS) {
                Some(r) => format!(
                    "\"op\":\"model\",\"engine\":\"{}\",\"model\":\"{}\",\"seed\":{seed},\
                     \"feasible\":true,\"layers\":{},\"macs\":{},\"cycles\":{:.0},\
                     \"delay_us\":{:.4},\"energy_uj\":{:.6},\"gops\":{:.3},\
                     \"peak_tops\":{:.4},\"utilization\":{:.5},\"power_w\":{:.5},\
                     \"tops_per_w\":{:.4},\"area_um2\":{:.3}",
                    json_escape(&spec.label()),
                    json_escape(&net.name),
                    r.layer_count(),
                    r.total_macs,
                    r.cycles,
                    r.delay_us,
                    r.energy_uj,
                    r.throughput_gops(),
                    r.peak_tops,
                    r.utilization,
                    r.power_w(),
                    r.tops_per_w(),
                    r.area_um2
                ),
                None => format!(
                    "\"op\":\"model\",\"engine\":\"{}\",\"model\":\"{}\",\"seed\":{seed},\
                     \"feasible\":false",
                    json_escape(&spec.label()),
                    json_escape(&net.name)
                ),
            };
            Ok((body, false))
        }
        "roster" => {
            let names: Vec<String> = roster::names()
                .iter()
                .map(|n| format!("\"{}\"", json_escape(n)))
                .collect();
            Ok((
                format!("\"op\":\"roster\",\"engines\":[{}]", names.join(",")),
                false,
            ))
        }
        "stats" => {
            let s = cache.stats();
            Ok((
                format!(
                    "\"op\":\"stats\",\"price_hits\":{},\"price_misses\":{},\
                     \"cycle_hits\":{},\"cycle_misses\":{},\"hit_rate\":{:.4}",
                    s.price_hits,
                    s.price_misses,
                    s.cycle_hits,
                    s.cycle_misses,
                    s.hit_rate()
                ),
                false,
            ))
        }
        "shutdown" => Ok(("\"op\":\"shutdown\"".into(), true)),
        other => Err(format!(
            "unknown op `{other}` (expected engine|layer|model|roster|stats|shutdown)"
        )),
    }
}

/// Resolves the request's engine: the `engine` label (which may itself
/// carry a `@W4`-style suffix), overridden by the optional `precision`
/// field when present — so clients can sweep the precision axis without
/// re-spelling labels.
fn resolve_engine(fields: &Fields) -> Result<crate::EngineSpec, String> {
    let name = fields.str("engine")?;
    let spec = roster::find(name).ok_or_else(|| format!("unknown engine `{name}`"))?;
    match fields.0.get("precision") {
        None => Ok(spec),
        Some(JsonValue::Str(p)) => tpe_arith::Precision::parse(p)
            .map(|precision| spec.with_precision(precision))
            .ok_or_else(|| format!("unknown precision `{p}`")),
        Some(_) => Err("field `precision` must be a string".into()),
    }
}

fn metrics_body(m: &crate::Metrics) -> String {
    format!(
        "\"area_um2\":{:.3},\"delay_us\":{:.4},\"energy_uj\":{:.6},\"fj_per_mac\":{:.4},\
         \"gops\":{:.3},\"peak_tops\":{:.4},\"utilization\":{:.5},\"power_w\":{:.5}",
        m.area_um2,
        m.delay_us,
        m.energy_uj,
        m.energy_per_mac_fj,
        m.throughput_gops,
        m.peak_tops,
        m.utilization,
        m.power_w
    )
}

/// What one [`serve`] run handled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeOutcome {
    /// Connections accepted.
    pub connections: u64,
    /// Request lines answered.
    pub requests: u64,
}

/// Runs the serve loop on `listener` until a `shutdown` request arrives:
/// thread-per-connection, every connection evaluating through the shared
/// `cache`. Blocks the calling thread.
pub fn serve(listener: TcpListener, cache: &EngineCache) -> std::io::Result<ServeOutcome> {
    let local = listener.local_addr()?;
    let shutdown = AtomicBool::new(false);
    let connections = AtomicU64::new(0);
    let requests = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for stream in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                // A failed accept (client reset mid-handshake, transient
                // fd exhaustion) must not take the server down; back off
                // briefly so a persistent error cannot hot-spin.
                Err(_) => {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                }
            };
            connections.fetch_add(1, Ordering::Relaxed);
            let (shutdown, requests) = (&shutdown, &requests);
            scope.spawn(move || {
                if handle_connection(&stream, cache, requests) {
                    shutdown.store(true, Ordering::SeqCst);
                    // Wake the accept loop so it observes the flag.
                    let _ = TcpStream::connect(local);
                }
            });
        }
    });
    Ok(ServeOutcome {
        connections: connections.load(Ordering::Relaxed),
        requests: requests.load(Ordering::Relaxed),
    })
}

/// Serves one connection; returns whether it requested shutdown.
fn handle_connection(stream: &TcpStream, cache: &EngineCache, requests: &AtomicU64) -> bool {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return false,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        requests.fetch_add(1, Ordering::Relaxed);
        let (response, is_shutdown) = handle_line(&line, cache);
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .is_err()
        {
            break;
        }
        if is_shutdown {
            let _ = writer.flush();
            return true;
        }
    }
    let _ = writer.flush();
    false
}

/// Sends `lines` over one connection and returns the response lines, in
/// order. Writes from a helper thread so large batches cannot deadlock on
/// full socket buffers.
pub fn query_batch(addr: &str, lines: &[String]) -> std::io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let expected = lines.iter().filter(|l| !l.trim().is_empty()).count();
    std::thread::scope(|scope| -> std::io::Result<Vec<String>> {
        let sender = scope.spawn(move || -> std::io::Result<()> {
            for line in lines {
                writer.write_all(line.as_bytes())?;
                writer.write_all(b"\n")?;
            }
            writer.flush()?;
            stream_shutdown_write(&writer);
            Ok(())
        });
        let reader = BufReader::new(&stream);
        let mut responses = Vec::with_capacity(expected);
        for line in reader.lines() {
            responses.push(line?);
            if responses.len() == expected {
                break;
            }
        }
        sender.join().expect("sender thread panicked")?;
        Ok(responses)
    })
}

fn stream_shutdown_write(stream: &TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_flat_objects() {
        let map = parse_flat_object(
            r#"{"op":"layer","engine":"OPT3[EN-T]","m":64,"seed":42,"deep":-1.5e2,"flag":true,"nil":null,"esc":"a\"b\\c\nd"}"#,
        )
        .unwrap();
        assert_eq!(map["op"], JsonValue::Str("layer".into()));
        assert_eq!(map["m"], JsonValue::Num(64.0));
        assert_eq!(map["deep"], JsonValue::Num(-150.0));
        assert_eq!(map["flag"], JsonValue::Bool(true));
        assert_eq!(map["nil"], JsonValue::Null);
        assert_eq!(map["esc"], JsonValue::Str("a\"b\\c\nd".into()));
        assert!(parse_flat_object("{}").unwrap().is_empty());
        // Standard JSON surrogate pairs decode to the non-BMP scalar.
        let fire = parse_flat_object(r#"{"w":"\ud83d\udd25!"}"#).unwrap();
        assert_eq!(fire["w"], JsonValue::Str("\u{1F525}!".into()));
        for bad in [r#"{"w":"\ud83d"}"#, r#"{"w":"\ud83dA"}"#] {
            assert!(parse_flat_object(bad).is_err(), "{bad} must not parse");
        }
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "[1]",
            "{\"a\":}",
            "{\"a\":{\"nested\":1}}",
            "{\"a\":[1]}",
            "{\"a\":1} trailing",
            "{\"a\":\"unterminated}",
            "{\"a\":01x}",
        ] {
            assert!(parse_flat_object(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn engine_and_roster_ops_answer() {
        let cache = EngineCache::new();
        let (resp, down) = handle_line(
            r#"{"id":7,"op":"engine","engine":"OPT4E[EN-T]/28nm@2.00GHz"}"#,
            &cache,
        );
        assert!(!down);
        assert!(resp.starts_with("{\"id\":7,\"ok\":true,"), "{resp}");
        assert!(resp.contains("\"feasible\":true"), "{resp}");
        assert!(resp.contains("\"peak_tops\":"), "{resp}");

        let (roster_resp, _) = handle_line(r#"{"id":8,"op":"roster"}"#, &cache);
        assert!(
            roster_resp.contains("OPT4E[EN-T]/28nm@2.00GHz"),
            "{roster_resp}"
        );
        assert_eq!(roster_resp.matches("GHz\"").count(), 12, "{roster_resp}");
    }

    #[test]
    fn layer_op_is_deterministic_per_request() {
        let cache = EngineCache::new();
        let req = r#"{"id":1,"op":"layer","engine":"OPT3[EN-T]/28nm@2.00GHz","m":64,"n":128,"k":64,"seed":9}"#;
        let (a, _) = handle_line(req, &cache);
        let (b, _) = handle_line(req, &cache);
        assert_eq!(a, b);
        assert!(a.contains("\"utilization\":"), "{a}");
        // A different seed is a different answer.
        let req2 = r#"{"id":1,"op":"layer","engine":"OPT3[EN-T]/28nm@2.00GHz","m":64,"n":128,"k":64,"seed":10}"#;
        let (c, _) = handle_line(req2, &cache);
        assert_ne!(a, c);
    }

    #[test]
    fn errors_echo_the_id_and_never_shutdown() {
        let cache = EngineCache::new();
        for (req, needle) in [
            (r#"{"id":3,"op":"warp"}"#, "unknown op"),
            (
                r#"{"id":3,"op":"engine","engine":"OPT9"}"#,
                "unknown engine",
            ),
            (
                r#"{"id":3,"op":"model","engine":"OPT3[EN-T]","model":"LeNet"}"#,
                "unknown model",
            ),
            (
                r#"{"id":3,"op":"layer","engine":"OPT3[EN-T]","m":0,"n":1,"k":1}"#,
                "positive",
            ),
            (
                r#"{"id":3,"op":"layer","engine":"OPT3[EN-T]","n":1,"k":1}"#,
                "missing field",
            ),
            ("not json", "expected"),
        ] {
            let (resp, down) = handle_line(req, &cache);
            assert!(!down);
            assert!(resp.contains("\"ok\":false"), "{req} -> {resp}");
            assert!(resp.contains(needle), "{req} -> {resp}");
        }
    }

    /// The optional precision field reprices the engine and is reflected
    /// in the echoed label; omitting it is byte-identical to W8.
    #[test]
    fn precision_field_reprices_and_tags_the_label() {
        let cache = EngineCache::new();
        let base = r#"{"id":1,"op":"engine","engine":"OPT4E[EN-T]/28nm@2.00GHz"}"#;
        let w8 = r#"{"id":1,"op":"engine","engine":"OPT4E[EN-T]/28nm@2.00GHz","precision":"W8"}"#;
        let w4 = r#"{"id":1,"op":"engine","engine":"OPT4E[EN-T]/28nm@2.00GHz","precision":"W4"}"#;
        let (r_base, _) = handle_line(base, &cache);
        let (r_w8, _) = handle_line(w8, &cache);
        let (r_w4, _) = handle_line(w4, &cache);
        assert_eq!(r_base, r_w8, "explicit W8 must be the default");
        assert_ne!(r_base, r_w4);
        assert!(r_w4.contains("@W4\""), "{r_w4}");
        assert!(r_w4.contains("\"feasible\":true"), "{r_w4}");
        // Layer queries stream fewer digits at W4 on a serial engine.
        let layer = |p: &str| {
            let req = format!(
                r#"{{"id":2,"op":"layer","engine":"OPT3[EN-T]/28nm@2.00GHz","m":64,"n":128,"k":64,"seed":7{p}}}"#
            );
            handle_line(&req, &cache).0
        };
        let (d8, d4) = (layer(""), layer(r#","precision":"w4""#));
        let delay = |r: &str| {
            let tail = &r[r.find("\"delay_us\":").unwrap() + 11..];
            tail[..tail.find(',').unwrap()].parse::<f64>().unwrap()
        };
        assert!(delay(&d4) < delay(&d8), "W4 must be faster: {d4} vs {d8}");
        // Bad precision strings error without shutting down.
        let (bad, down) = handle_line(
            r#"{"id":3,"op":"engine","engine":"OPT3[EN-T]","precision":"W99"}"#,
            &cache,
        );
        assert!(!down);
        assert!(bad.contains("unknown precision"), "{bad}");
    }

    #[test]
    fn infeasible_engines_answer_feasible_false() {
        let cache = EngineCache::new();
        let (resp, _) = handle_line(
            r#"{"id":2,"op":"engine","engine":"MAC(TPU)/28nm@2.00GHz"}"#,
            &cache,
        );
        assert!(resp.contains("\"ok\":true"), "{resp}");
        assert!(resp.contains("\"feasible\":false"), "{resp}");
    }

    #[test]
    fn shutdown_op_flags_the_connection() {
        let cache = EngineCache::new();
        let (resp, down) = handle_line(r#"{"id":9,"op":"shutdown"}"#, &cache);
        assert!(down);
        assert!(resp.contains("\"op\":\"shutdown\""), "{resp}");
    }
}
