//! Per-layer and end-to-end model reports: the model scheduler's output
//! schema.
//!
//! A [`ModelReport`] is the model-level analogue of a sweep
//! [`Metrics`](crate::eval::Metrics) row — the quantities Figures 12–13
//! compare across networks: end-to-end latency, sustained throughput,
//! energy, TOPS/W and delay-weighted utilization. Aggregates are pure
//! sums/weighted means of the per-layer rows (property-tested in
//! `tpe-pipeline`'s suite), so layer and model views can never drift
//! apart.

use std::sync::Arc;

use crate::spec::{Bound, EnginePrice, EngineSpec};

/// One layer's scheduled outcome on one engine.
///
/// The label is `Arc`-backed so a report rebuilt from a cached
/// [`ModelRecord`](crate::cache::ModelRecord) shares the rows instead of
/// re-cloning every name.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// Layer label (the figure x-axis names).
    pub name: Arc<str>,
    /// Useful multiply–accumulates.
    pub macs: u64,
    /// Scheduling granularity: dense img2col tiles or serial sync rounds.
    pub tiles: f64,
    /// Array cycles.
    pub cycles: f64,
    /// Wall-clock (µs).
    pub delay_us: f64,
    /// Lane utilization (busy fraction for serial, MAC occupancy for dense).
    pub utilization: f64,
    /// Energy (µJ).
    pub energy_uj: f64,
    /// Bytes moved across the memory boundary (see
    /// [`LayerTraffic`](crate::schedule::LayerTraffic)).
    pub bytes_moved: f64,
    /// Arithmetic intensity: ops per byte moved (2 ops per MAC).
    pub intensity_ops_per_byte: f64,
    /// The binding roofline resource for this layer.
    pub bound: Bound,
}

/// End-to-end evaluation of one model on one engine.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelReport {
    /// Network name (Figure 12/13 labels).
    pub model: Arc<str>,
    /// The engine evaluated.
    pub engine: EngineSpec,
    /// Per-layer breakdown, in execution order (shared slice: warm cache
    /// hits hand out refcount bumps, not row clones).
    pub layers: Arc<[LayerReport]>,
    /// Total useful MACs.
    pub total_macs: u64,
    /// Total array cycles (sum over layers).
    pub cycles: f64,
    /// End-to-end latency (µs, sum over layers).
    pub delay_us: f64,
    /// Total energy (µJ, sum over layers).
    pub energy_uj: f64,
    /// Delay-weighted average utilization.
    pub utilization: f64,
    /// Total array area (µm²), from the engine price.
    pub area_um2: f64,
    /// Peak throughput (TOPS), from the engine price.
    pub peak_tops: f64,
    /// Total bytes moved (sum over layers).
    pub bytes_moved: f64,
    /// Whole-model arithmetic intensity: `2·total_macs / bytes_moved`.
    pub intensity_ops_per_byte: f64,
    /// The dominant roofline bound: the bound class holding the largest
    /// share of end-to-end delay (ties prefer compute, then SRAM).
    pub bound: Bound,
}

impl ModelReport {
    /// Builds the end-to-end aggregate from per-layer rows. `engine` is
    /// borrowed (its clone is allocation-free — every field is scalar or
    /// `&'static`); the model label accepts anything `Arc<str>`-able so
    /// callers with a shared name pass it without re-allocating.
    pub fn aggregate(
        model: impl Into<Arc<str>>,
        engine: &EngineSpec,
        price: &EnginePrice,
        layers: Vec<LayerReport>,
    ) -> Self {
        let delay_us: f64 = layers.iter().map(|l| l.delay_us).sum();
        let util_weighted: f64 = layers.iter().map(|l| l.utilization * l.delay_us).sum();
        let total_macs: u64 = layers.iter().map(|l| l.macs).sum();
        let bytes_moved: f64 = layers.iter().map(|l| l.bytes_moved).sum();
        Self {
            model: model.into(),
            engine: engine.clone(),
            total_macs,
            cycles: layers.iter().map(|l| l.cycles).sum(),
            delay_us,
            energy_uj: layers.iter().map(|l| l.energy_uj).sum(),
            utilization: if delay_us > 0.0 {
                util_weighted / delay_us
            } else {
                0.0
            },
            area_um2: price.area_um2,
            peak_tops: price.peak_tops,
            bytes_moved,
            intensity_ops_per_byte: if bytes_moved > 0.0 {
                2.0 * total_macs as f64 / bytes_moved
            } else {
                0.0
            },
            bound: dominant_bound(&layers),
            layers: layers.into(),
        }
    }

    /// Sustained throughput over the whole model (GOPS, 2 ops per MAC).
    /// Zero for a degenerate empty model (no layers, no delay).
    pub fn throughput_gops(&self) -> f64 {
        if self.delay_us > 0.0 {
            2.0 * self.total_macs as f64 / self.delay_us / 1e3
        } else {
            0.0
        }
    }

    /// Average power over the run (W). Zero for a degenerate empty model.
    pub fn power_w(&self) -> f64 {
        if self.delay_us > 0.0 {
            self.energy_uj / self.delay_us
        } else {
            0.0
        }
    }

    /// Sustained energy efficiency (TOPS/W). Zero for a degenerate empty
    /// model.
    pub fn tops_per_w(&self) -> f64 {
        let power = self.power_w();
        if power > 0.0 {
            self.throughput_gops() / 1e3 / power
        } else {
            0.0
        }
    }

    /// Layer count.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }
}

/// The bound class holding the largest share of end-to-end delay. Ties
/// resolve in `Compute > Sram > Dram` order, so an all-compute model (the
/// `Unbounded` corner, always) reads as compute-bound even when empty.
fn dominant_bound(layers: &[LayerReport]) -> Bound {
    let mut share = [0.0_f64; 3];
    for l in layers {
        let slot = match l.bound {
            Bound::Compute => 0,
            Bound::Sram => 1,
            Bound::Dram => 2,
        };
        share[slot] += l.delay_us;
    }
    let mut best = Bound::Compute;
    let mut best_share = share[0];
    for (slot, bound) in [(1, Bound::Sram), (2, Bound::Dram)] {
        if share[slot] > best_share {
            best = bound;
            best_share = share[slot];
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpe_core::arch::PeStyle;
    use tpe_sim::array::ClassicArch;

    fn layer(name: &str, macs: u64, cycles: f64, util: f64, energy: f64) -> LayerReport {
        LayerReport {
            name: name.into(),
            macs,
            tiles: 1.0,
            cycles,
            delay_us: cycles / 1e3,
            utilization: util,
            energy_uj: energy,
            bytes_moved: macs as f64,
            intensity_ops_per_byte: 2.0,
            bound: Bound::Compute,
        }
    }

    fn price() -> EnginePrice {
        EnginePrice {
            area_um2: 100.0,
            e_active_fj: 2.0,
            e_idle_fj: 0.1,
            instances: 4.0,
            lanes_total: 4.0,
            peak_tops: 1.0,
        }
    }

    #[test]
    fn aggregate_sums_and_weights() {
        let engine = EngineSpec::dense(PeStyle::TraditionalMac, ClassicArch::Tpu, 1.0);
        let r = ModelReport::aggregate(
            "toy",
            &engine,
            &price(),
            vec![
                layer("a", 1000, 100.0, 1.0, 3.0),
                layer("b", 500, 300.0, 0.5, 1.0),
            ],
        );
        assert_eq!(r.total_macs, 1500);
        assert_eq!(r.cycles, 400.0);
        assert_eq!(r.energy_uj, 4.0);
        // Delay-weighted: (1.0·0.1 + 0.5·0.3) / 0.4 = 0.625.
        assert!((r.utilization - 0.625).abs() < 1e-12);
        assert!((r.throughput_gops() - 2.0 * 1500.0 / 0.4 / 1e3).abs() < 1e-9);
        assert!((r.power_w() - 4.0 / 0.4).abs() < 1e-12);
        assert!(r.tops_per_w() > 0.0);
        assert_eq!(r.layer_count(), 2);
        assert_eq!(r.bytes_moved, 1500.0, "bytes sum over layers");
        assert!((r.intensity_ops_per_byte - 2.0).abs() < 1e-12);
        assert_eq!(r.bound, Bound::Compute);
    }

    #[test]
    fn dominant_bound_is_delay_weighted_with_compute_preference() {
        let engine = EngineSpec::dense(PeStyle::TraditionalMac, ClassicArch::Tpu, 1.0);
        let mut rows = vec![
            layer("a", 10, 100.0, 1.0, 1.0),
            layer("b", 10, 300.0, 1.0, 1.0),
            layer("c", 10, 100.0, 1.0, 1.0),
        ];
        rows[1].bound = Bound::Dram;
        let r = ModelReport::aggregate("toy", &engine, &price(), rows.clone());
        assert_eq!(r.bound, Bound::Dram, "300 of 500 delay units are DRAM");
        rows[1].bound = Bound::Compute;
        rows[2].bound = Bound::Sram;
        let r = ModelReport::aggregate("toy", &engine, &price(), rows.clone());
        assert_eq!(r.bound, Bound::Compute);
        // Exact tie: compute wins over sram.
        rows[1].delay_us = 0.0;
        let r = ModelReport::aggregate("toy", &engine, &price(), rows);
        assert_eq!(r.bound, Bound::Compute);
        // Degenerate empty model.
        let empty = ModelReport::aggregate("empty", &engine, &price(), vec![]);
        assert_eq!(empty.bound, Bound::Compute);
        assert_eq!(empty.intensity_ops_per_byte, 0.0);
    }
}
