//! The named engine registry: Table VII's roster, the sweep corners, and
//! label-based lookup for `repro serve` / `repro query`.
//!
//! Engine labels ("OPT4E\[EN-T\]/28nm\@2.00GHz") are the workspace's
//! stable identity strings — seeds, CSV rows, `--filter`/`--arch`
//! matching and serve queries all key on them. [`find`] resolves a label
//! back to its [`EngineSpec`]: roster entries by name or full label, and
//! arbitrary sweep points by parsing the label grammar, so a serve client
//! can ask about any engine a sweep can enumerate.

use tpe_arith::encode::EncodingKind;
use tpe_arith::Precision;
use tpe_core::arch::PeStyle;
use tpe_sim::array::ClassicArch;

use crate::spec::{classic_name, Corner, EngineSpec, MemorySpec};

/// The `repro models` roster: the four classic dense baselines at
/// their Table VII clocks, their OPT1/OPT2 retrofits, and the three
/// serial styles under EN-T — every Table VII configuration, so each
/// model is scored across all four dense array geometries *and* all
/// serial PE styles.
pub fn paper_roster() -> Vec<EngineSpec> {
    use ClassicArch::*;
    vec![
        EngineSpec::dense(PeStyle::TraditionalMac, Tpu, 1.0),
        EngineSpec::dense(PeStyle::TraditionalMac, Ascend, 1.0),
        EngineSpec::dense(PeStyle::TraditionalMac, Trapezoid, 1.0),
        EngineSpec::dense(PeStyle::TraditionalMac, FlexFlow, 1.0),
        EngineSpec::dense(PeStyle::Opt1, Tpu, 1.5),
        EngineSpec::dense(PeStyle::Opt1, Ascend, 1.5),
        EngineSpec::dense(PeStyle::Opt1, Trapezoid, 1.5),
        EngineSpec::dense(PeStyle::Opt1, FlexFlow, 1.5),
        EngineSpec::dense(PeStyle::Opt2, FlexFlow, 1.5),
        EngineSpec::serial(PeStyle::Opt3, EncodingKind::EnT, 2.0),
        EngineSpec::serial(PeStyle::Opt4C, EncodingKind::EnT, 2.5),
        EngineSpec::serial(PeStyle::Opt4E, EncodingKind::EnT, 2.0),
    ]
}

/// The default design-space corner axis (`repro dse`): the paper's SMIC
/// 28 nm node at its three studied clocks plus the 16 nm scaling point.
pub fn sweep_corners() -> Vec<Corner> {
    vec![
        Corner::smic28(1.0),
        Corner::smic28(1.5),
        Corner::smic28(2.0),
        Corner::n16(1.5),
    ]
}

/// The named memory-hierarchy corners: the `@<name>` label suffixes,
/// `memory=<name>` filter values and serve `memory` field values. The
/// unbounded default leads so index 0 is the identity projection.
pub fn memory_corners() -> Vec<MemorySpec> {
    vec![
        MemorySpec::unbounded(),
        MemorySpec::edge(),
        MemorySpec::mobile(),
        MemorySpec::hbm(),
    ]
}

/// Resolves a memory-corner name (case-insensitive) to its spec.
pub fn find_memory(name: &str) -> Option<MemorySpec> {
    memory_corners()
        .into_iter()
        .find(|m| m.name.eq_ignore_ascii_case(name))
}

/// Full labels of every roster engine, in roster order.
pub fn names() -> Vec<String> {
    paper_roster().iter().map(EngineSpec::label).collect()
}

/// Resolves an engine name to its spec.
///
/// Accepted forms, case-insensitive:
///
/// * a roster arch label ("OPT4E\[EN-T\]") — resolved at its paper clock;
/// * a full label ("OPT1(TPU)/16nm\@1.50GHz") — any arch the label
///   grammar can express, at any sweep-expressible corner;
/// * any of the above with a trailing precision suffix
///   ("OPT3\[EN-T\]/28nm\@2.00GHz\@W4", "OPT4E\[EN-T\]\@W16") — the
///   `@W…` grammar [`EngineSpec::label`] emits for non-default
///   precisions, resolved via [`Precision::parse`];
/// * any of the above with a trailing memory-corner suffix
///   ("OPT4E\[EN-T\]/28nm\@2.00GHz\@edge",
///   "OPT3\[EN-T\]\@W4\@mobile") — the `@<name>` grammar
///   [`EngineSpec::label`] emits for finite [`MemorySpec`] corners,
///   resolved via [`find_memory`].
pub fn find(name: &str) -> Option<EngineSpec> {
    let roster = paper_roster();
    if let Some(hit) = roster.iter().find(|e| e.label().eq_ignore_ascii_case(name)) {
        return Some(hit.clone());
    }
    if let Some(hit) = roster
        .iter()
        .find(|e| e.arch_label().eq_ignore_ascii_case(name))
    {
        return Some(hit.clone());
    }
    // Precision / memory suffixes: peel them off the right and resolve
    // the rest (corner names and precision labels are disjoint, so each
    // tail parses by exactly one of the two). The corner's own "@2.00GHz"
    // tail never parses as either, so plain labels fall through untouched.
    if let Some((head, tail)) = name.rsplit_once('@') {
        if let Some(precision) = Precision::parse(tail) {
            return find(head).map(|spec| spec.with_precision(precision));
        }
        if let Some(memory) = find_memory(tail) {
            return find(head).map(|spec| spec.with_memory(memory));
        }
    }
    let (arch_part, corner_part) = name.split_once('/')?;
    let spec = parse_arch_label(arch_part)?;
    let corner = parse_corner(corner_part)?;
    Some(spec.at_corner(corner))
}

/// Parses "STYLE\[ENCODING\]" (serial) or "STYLE(TOPOLOGY)" (dense) at a
/// placeholder clock (callers attach the corner).
fn parse_arch_label(arch: &str) -> Option<EngineSpec> {
    let style_of = |s: &str| {
        PeStyle::ALL
            .into_iter()
            .find(|p| p.name().eq_ignore_ascii_case(s))
    };
    // Serial first: encodings like "bit-serial(C)" contain parentheses.
    if let Some((style_str, rest)) = arch.split_once('[') {
        let enc_str = rest.strip_suffix(']')?;
        let style = style_of(style_str)?;
        let encoding = EncodingKind::ALL
            .into_iter()
            .find(|e| e.to_string().eq_ignore_ascii_case(enc_str))?;
        return style
            .is_serial()
            .then(|| EngineSpec::serial(style, encoding, 1.0));
    }
    let (style_str, rest) = arch.split_once('(')?;
    let topo_str = rest.strip_suffix(')')?;
    let style = style_of(style_str)?;
    let topo = ClassicArch::ALL
        .into_iter()
        .find(|a| classic_name(*a).eq_ignore_ascii_case(topo_str))?;
    (!style.is_serial()).then(|| EngineSpec::dense(style, topo, 1.0))
}

/// Parses "28nm\@2.00GHz" into a [`Corner`].
fn parse_corner(corner: &str) -> Option<Corner> {
    let (node_str, freq_str) = corner.split_once('@')?;
    let ghz: f64 = freq_str
        .strip_suffix("GHz")
        .or_else(|| freq_str.strip_suffix("ghz"))?
        .parse()
        .ok()?;
    if !(ghz.is_finite() && ghz > 0.0) {
        return None;
    }
    match node_str.to_ascii_lowercase().as_str() {
        "28nm" => Some(Corner::smic28(ghz)),
        "16nm" => Some(Corner::n16(ghz)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_roster_label_round_trips_through_find() {
        for engine in paper_roster() {
            let by_label = find(&engine.label()).unwrap();
            assert_eq!(by_label, engine, "{}", engine.label());
            let by_arch = find(&engine.arch_label()).unwrap();
            assert_eq!(by_arch.label(), engine.label(), "paper clock expected");
        }
        assert_eq!(names().len(), 12);
    }

    #[test]
    fn find_parses_off_roster_sweep_points() {
        let e = find("OPT3[CSD]/28nm@2.00GHz").unwrap();
        assert_eq!(e.label(), "OPT3[CSD]/28nm@2.00GHz");
        let e = find("opt1(tpu)/16nm@1.50ghz").unwrap();
        assert_eq!(e.label(), "OPT1(TPU)/16nm@1.50GHz");
        let e = find("OPT4E[bit-serial(C)]/28nm@2.00GHz").unwrap();
        assert_eq!(e.encoding, EncodingKind::BitSerialComplement);
        // The MAC baseline label grammar.
        let e = find("MAC(FlexFlow)/28nm@1.00GHz").unwrap();
        assert_eq!(e.style, PeStyle::TraditionalMac);
    }

    /// The label round-trip property over the whole expressible space:
    /// every roster engine at every sweep corner and every precision
    /// preset resolves back to itself through `find(label(spec))` — what
    /// makes any sweep point, at any precision, servable by name.
    #[test]
    fn every_roster_corner_precision_label_round_trips() {
        for engine in paper_roster() {
            for corner in sweep_corners() {
                for precision in Precision::PRESETS {
                    let spec = engine.clone().at_corner(corner).with_precision(precision);
                    let found = find(&spec.label())
                        .unwrap_or_else(|| panic!("{} must resolve", spec.label()));
                    assert_eq!(found, spec, "{}", spec.label());
                    // W8 labels are suffix-free; everything else carries
                    // the parsable suffix.
                    assert_eq!(
                        spec.label().contains("@W"),
                        !precision.is_default(),
                        "{}",
                        spec.label()
                    );
                }
            }
        }
    }

    /// Arch-label + precision shorthand resolves at the paper clock.
    #[test]
    fn find_parses_precision_suffixes() {
        let e = find("OPT4E[EN-T]@W4").unwrap();
        assert_eq!(e.precision, Precision::W4);
        assert_eq!(e.freq_ghz, 2.0, "paper clock expected");
        let e = find("opt3[csd]/28nm@2.00ghz@w16").unwrap();
        assert_eq!(e.precision, Precision::W16);
        assert_eq!(e.label(), "OPT3[CSD]/28nm@2.00GHz@W16");
        let e = find("OPT4C[EN-T]/16nm@1.50GHz@W8xW4").unwrap();
        assert_eq!(e.precision, Precision::W8X4);
        // An explicit W8 suffix resolves to the suffix-free default.
        let e = find("OPT4E[EN-T]/28nm@2.00GHz@W8").unwrap();
        assert_eq!(e.label(), "OPT4E[EN-T]/28nm@2.00GHz");
    }

    #[test]
    fn find_rejects_nonsense() {
        for bad in [
            "",
            "OPT9[EN-T]/28nm@2.00GHz",
            "OPT3[NOPE]/28nm@2.00GHz",
            "OPT3(TPU)/28nm@2.00GHz", // serial style on a dense topology
            "MAC[EN-T]/28nm@2.00GHz", // dense style with an encoding
            "OPT1(TPU)/7nm@1.00GHz",  // unknown node
            "OPT1(TPU)/28nm@fastGHz", // unparsable clock
            "OPT3[CSD]",              // off-roster arch without a corner
            "OPT3[EN-T]/28nm@2.00GHz@W99", // invalid precision suffix
            "@W4",                    // precision without an engine
            "OPT4E[EN-T]/28nm@2.00GHz@hbm3", // unknown memory corner
            "@edge",                  // memory corner without an engine
        ] {
            assert!(find(bad).is_none(), "{bad:?} must not resolve");
        }
    }

    /// The label round-trip property extended along the memory axis:
    /// every roster engine × memory corner × precision resolves back to
    /// itself, and only finite corners leave a suffix.
    #[test]
    fn every_memory_corner_label_round_trips() {
        for engine in paper_roster() {
            for memory in memory_corners() {
                for precision in [Precision::W8, Precision::W4] {
                    let spec = engine.clone().with_precision(precision).with_memory(memory);
                    let found = find(&spec.label())
                        .unwrap_or_else(|| panic!("{} must resolve", spec.label()));
                    assert_eq!(found, spec, "{}", spec.label());
                    assert_eq!(
                        spec.label().ends_with(memory.name),
                        !memory.is_unbounded(),
                        "{}",
                        spec.label()
                    );
                }
            }
        }
        // Corner names never collide with precision labels: both parsers
        // stay disjoint over the whole registry.
        for m in memory_corners() {
            assert!(Precision::parse(m.name).is_none(), "{}", m.name);
        }
        // An explicit @unbounded suffix resolves to the suffix-free default.
        let e = find("OPT4E[EN-T]/28nm@2.00GHz@unbounded").unwrap();
        assert_eq!(e.label(), "OPT4E[EN-T]/28nm@2.00GHz");
    }

    #[test]
    fn sweep_corners_cover_the_paper_axis() {
        let corners = sweep_corners();
        assert_eq!(corners.len(), 4);
        let labels: Vec<String> = corners.iter().map(Corner::label).collect();
        assert_eq!(
            labels,
            [
                "28nm@1.00GHz",
                "28nm@1.50GHz",
                "28nm@2.00GHz",
                "16nm@1.50GHz"
            ]
        );
    }
}
