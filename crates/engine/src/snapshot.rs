//! Durable warm state: a versioned, std-only binary snapshot of the
//! [`EngineCache`]'s four maps.
//!
//! A long-running `repro serve` process (or a `repro dse` sweep) pays the
//! cold synthesis/sampling cost exactly once — and then loses it with the
//! process. Snapshots make that warm state survive restarts and seed
//! fresh replicas: [`save`] writes every memoized entry to disk
//! atomically (temp + rename), [`load`] imports it back, and a replayed
//! workload reads ≈100% hit rate from the first query.
//!
//! ## Format
//!
//! ```text
//! magic   "TPECACHE"                      8 bytes
//! version u32 LE                          strict-rejected on mismatch
//! layout  u64 LE fnv1a(LAYOUT_DESCRIPTOR) strict-rejected on mismatch
//! counts  4 × u64 LE                      records / prices / cycles / models
//! entries fixed-layout, sorted            see below
//! check   u64 LE fnv1a(payload)           over version..entries
//! ```
//!
//! Entries are fixed-layout little-endian: enums as one-byte codes from
//! the explicit tables below (exhaustive matches, so adding a variant
//! fails to compile until the codec — and `LAYOUT_DESCRIPTOR` — is
//! updated), `Option` as a presence byte, `f64` via `to_bits`, `usize`
//! widened to `u64`. Model entries carry variable-length parts — strings
//! are a `u64` byte length + UTF-8 bytes, layer lists a `u64` count +
//! rows — everything still strictly length-checked against the payload.
//! Within each map the encoded entries are sorted by
//! their byte representation: shard hashing ([`std::hash::DefaultHasher`])
//! is not stable across processes, so canonical ordering is what makes a
//! snapshot of the same cache contents **byte-identical** wherever it is
//! written.
//!
//! ## Versioning policy
//!
//! Any change to an entry layout, an enum table, or the header bumps
//! [`SNAPSHOT_VERSION`] (and the descriptor hash catches what a forgotten
//! bump would miss). There is no migration path by design: a snapshot is
//! a cache, not a database — a rejected file costs one cold sweep, while
//! a misdecoded file would silently poison every result derived from it.
//! Rejections are counted on `ctr_snapshot_rejected` and surface as
//! empty-with-warning at every call site, never as a panic.

use std::path::Path;
use std::sync::{Arc, OnceLock};

use tpe_arith::encode::EncodingKind;
use tpe_arith::Precision;
use tpe_core::arch::PeStyle;
use tpe_sim::array::ClassicArch;

use crate::cache::{
    CacheContents, CycleKey, EngineCache, ModelKey, ModelRecord, PeKey, PeRecord, PriceKey,
    SerialLayerRecord,
};
use crate::caps::CycleModel;
use crate::report::LayerReport;
use crate::spec::{Bound, EnginePrice};

/// Format version; bumped on any layout change (see the module docs for
/// the no-migration policy). v2 added the whole-model report map (a
/// fourth count + entry section); v3 added the memory corner to the
/// price/model keys and the roofline fields (bytes, intensity, bound) to
/// layer rows and model aggregates. v1 and v2 snapshots are
/// strict-rejected.
pub const SNAPSHOT_VERSION: u32 = 3;

/// Leading magic bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"TPECACHE";

/// Human-readable spelling of the entire entry layout *and* the enum
/// code tables; its fnv1a hash rides in the header so a snapshot written
/// under any other layout is rejected even if the version was not bumped.
const LAYOUT_DESCRIPTOR: &str = "v3;\
     pe=style:u8,dense:opt(u8),in_pe_enc:opt(u8),prec:u32x3,freq_mhz:u32,node_dnm:u32;\
     pe_rec=opt(area:f64,active_uw:f64,idle_uw:f64,lanes:u32);\
     price=style:u8,dense:opt(u8),enc:u8,prec:u32x3,freq_mhz:u32,node_dnm:u32,\
     sram_kib:u32,sram_bw:u32,dram_bw:u32;\
     price_rec=opt(area:f64,e_active:f64,e_idle:f64,instances:f64,lanes_total:f64,peak_tops:f64);\
     cycle=style:u8,enc:u8,a_bits:u32,m:u64,n:u64,k:u64,repeats:u64,seed:u64,\
     max_rounds:u64,max_operands:u64,model:u8;\
     cycle_rec=cycles:f64,busy_sum:f64,busy_min:f64,busy_max:f64,rounds:f64,columns:u32;\
     model_key=style:u8,dense:opt(u8),enc:u8,prec:u32x3,freq_mhz:u32,node_dnm:u32,\
     model:str,layers_hash:u64,seed:u64,max_rounds:u64,max_operands:u64,cycle_model:u8,\
     sram_kib:u32,sram_bw:u32,dram_bw:u32;\
     model_rec=model:str,layers:vec(name:str,macs:u64,tiles:f64,cycles:f64,delay_us:f64,\
     util:f64,energy_uj:f64,bytes:f64,intensity:f64,bound:u8),\
     total_macs:u64,cycles:f64,delay_us:f64,energy_uj:f64,util:f64,\
     area:f64,peak_tops:f64,bytes:f64,intensity:f64,bound:u8,busy_sum:f64;\
     str=len:u64,utf8;\
     styles=mac,opt1,opt2,opt3,opt4c,opt4e;archs=tpu,ascend,trapezoid,flexflow;\
     encs=mbe,ent,csd,bsc,bsm;models=sampled,analytic;bounds=compute,sram,dram";

/// What a completed save/load reports (the `snapshot` serve op and the
/// CLI echo these; `BENCH_snapshot.json` archives them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Entries across the four maps.
    pub entries: usize,
    /// Encoded size in bytes.
    pub bytes: usize,
}

// ---------------------------------------------------------------------
// Enum code tables. Exhaustive in both directions: a new variant fails
// to compile here, forcing a deliberate LAYOUT_DESCRIPTOR + version
// decision instead of a silent wire change.

fn style_code(s: PeStyle) -> u8 {
    match s {
        PeStyle::TraditionalMac => 0,
        PeStyle::Opt1 => 1,
        PeStyle::Opt2 => 2,
        PeStyle::Opt3 => 3,
        PeStyle::Opt4C => 4,
        PeStyle::Opt4E => 5,
    }
}

fn style_from(code: u8) -> Result<PeStyle, String> {
    Ok(match code {
        0 => PeStyle::TraditionalMac,
        1 => PeStyle::Opt1,
        2 => PeStyle::Opt2,
        3 => PeStyle::Opt3,
        4 => PeStyle::Opt4C,
        5 => PeStyle::Opt4E,
        other => return Err(format!("bad PeStyle code {other}")),
    })
}

fn arch_code(a: ClassicArch) -> u8 {
    match a {
        ClassicArch::Tpu => 0,
        ClassicArch::Ascend => 1,
        ClassicArch::Trapezoid => 2,
        ClassicArch::FlexFlow => 3,
    }
}

fn arch_from(code: u8) -> Result<ClassicArch, String> {
    Ok(match code {
        0 => ClassicArch::Tpu,
        1 => ClassicArch::Ascend,
        2 => ClassicArch::Trapezoid,
        3 => ClassicArch::FlexFlow,
        other => return Err(format!("bad ClassicArch code {other}")),
    })
}

fn encoding_code(e: EncodingKind) -> u8 {
    match e {
        EncodingKind::Mbe => 0,
        EncodingKind::EnT => 1,
        EncodingKind::Csd => 2,
        EncodingKind::BitSerialComplement => 3,
        EncodingKind::BitSerialSignMagnitude => 4,
    }
}

fn encoding_from(code: u8) -> Result<EncodingKind, String> {
    Ok(match code {
        0 => EncodingKind::Mbe,
        1 => EncodingKind::EnT,
        2 => EncodingKind::Csd,
        3 => EncodingKind::BitSerialComplement,
        4 => EncodingKind::BitSerialSignMagnitude,
        other => return Err(format!("bad EncodingKind code {other}")),
    })
}

fn model_code(m: CycleModel) -> u8 {
    match m {
        CycleModel::Sampled => 0,
        CycleModel::Analytic => 1,
    }
}

fn model_from(code: u8) -> Result<CycleModel, String> {
    Ok(match code {
        0 => CycleModel::Sampled,
        1 => CycleModel::Analytic,
        other => return Err(format!("bad CycleModel code {other}")),
    })
}

fn bound_code(b: Bound) -> u8 {
    match b {
        Bound::Compute => 0,
        Bound::Sram => 1,
        Bound::Dram => 2,
    }
}

fn bound_from(code: u8) -> Result<Bound, String> {
    Ok(match code {
        0 => Bound::Compute,
        1 => Bound::Sram,
        2 => Bound::Dram,
        other => return Err(format!("bad Bound code {other}")),
    })
}

// ---------------------------------------------------------------------
// Little-endian writer/reader over flat byte buffers.

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_opt(out: &mut Vec<u8>, present: bool) {
    out.push(u8::from(present));
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Sequential reader with truncation-safe takes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| format!("truncated snapshot (wanted {n} bytes at {})", self.pos))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn usize(&mut self) -> Result<usize, String> {
        usize::try_from(self.u64()?).map_err(|_| "usize overflow in snapshot".to_string())
    }

    fn opt(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(format!("bad presence byte {other}")),
        }
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.usize()?;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| "invalid UTF-8 in snapshot string".to_string())
    }

    /// Bytes left before the end of the buffer (reservation guard for
    /// variable-length sections).
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

// ---------------------------------------------------------------------
// Per-entry codecs.

fn put_precision(out: &mut Vec<u8>, p: Precision) {
    put_u32(out, p.a_bits);
    put_u32(out, p.b_bits);
    put_u32(out, p.acc_bits);
}

fn read_precision(r: &mut Reader) -> Result<Precision, String> {
    Ok(Precision {
        a_bits: r.u32()?,
        b_bits: r.u32()?,
        acc_bits: r.u32()?,
    })
}

fn put_dense(out: &mut Vec<u8>, dense: Option<ClassicArch>) {
    put_opt(out, dense.is_some());
    if let Some(a) = dense {
        out.push(arch_code(a));
    }
}

fn read_dense(r: &mut Reader) -> Result<Option<ClassicArch>, String> {
    if r.opt()? {
        Ok(Some(arch_from(r.u8()?)?))
    } else {
        Ok(None)
    }
}

fn encode_record_entry(out: &mut Vec<u8>, key: &PeKey, rec: &Option<PeRecord>) {
    out.push(style_code(key.style));
    put_dense(out, key.dense);
    put_opt(out, key.in_pe_encoding.is_some());
    if let Some(e) = key.in_pe_encoding {
        out.push(encoding_code(e));
    }
    put_precision(out, key.precision);
    put_u32(out, key.freq_mhz);
    put_u32(out, key.node_dnm);
    put_opt(out, rec.is_some());
    if let Some(rec) = rec {
        put_f64(out, rec.area_um2);
        put_f64(out, rec.active_power_uw);
        put_f64(out, rec.idle_power_uw);
        put_u32(out, rec.lanes);
    }
}

fn decode_record_entry(r: &mut Reader) -> Result<(PeKey, Option<PeRecord>), String> {
    let style = style_from(r.u8()?)?;
    let dense = read_dense(r)?;
    let in_pe_encoding = if r.opt()? {
        Some(encoding_from(r.u8()?)?)
    } else {
        None
    };
    let key = PeKey {
        style,
        dense,
        in_pe_encoding,
        precision: read_precision(r)?,
        freq_mhz: r.u32()?,
        node_dnm: r.u32()?,
    };
    let rec = if r.opt()? {
        Some(PeRecord {
            area_um2: r.f64()?,
            active_power_uw: r.f64()?,
            idle_power_uw: r.f64()?,
            lanes: r.u32()?,
        })
    } else {
        None
    };
    Ok((key, rec))
}

fn encode_price_entry(out: &mut Vec<u8>, key: &PriceKey, price: &Option<EnginePrice>) {
    out.push(style_code(key.style));
    put_dense(out, key.dense);
    out.push(encoding_code(key.encoding));
    put_precision(out, key.precision);
    put_u32(out, key.freq_mhz);
    put_u32(out, key.node_dnm);
    put_u32(out, key.sram_kib);
    put_u32(out, key.sram_bw);
    put_u32(out, key.dram_bw);
    put_opt(out, price.is_some());
    if let Some(p) = price {
        put_f64(out, p.area_um2);
        put_f64(out, p.e_active_fj);
        put_f64(out, p.e_idle_fj);
        put_f64(out, p.instances);
        put_f64(out, p.lanes_total);
        put_f64(out, p.peak_tops);
    }
}

fn decode_price_entry(r: &mut Reader) -> Result<(PriceKey, Option<EnginePrice>), String> {
    let key = PriceKey {
        style: style_from(r.u8()?)?,
        dense: read_dense(r)?,
        encoding: encoding_from(r.u8()?)?,
        precision: read_precision(r)?,
        freq_mhz: r.u32()?,
        node_dnm: r.u32()?,
        sram_kib: r.u32()?,
        sram_bw: r.u32()?,
        dram_bw: r.u32()?,
    };
    let price = if r.opt()? {
        Some(EnginePrice {
            area_um2: r.f64()?,
            e_active_fj: r.f64()?,
            e_idle_fj: r.f64()?,
            instances: r.f64()?,
            lanes_total: r.f64()?,
            peak_tops: r.f64()?,
        })
    } else {
        None
    };
    Ok((key, price))
}

fn encode_cycle_entry(out: &mut Vec<u8>, key: &CycleKey, rec: &SerialLayerRecord) {
    out.push(style_code(key.style));
    out.push(encoding_code(key.encoding));
    put_u32(out, key.a_bits);
    put_u64(out, key.m as u64);
    put_u64(out, key.n as u64);
    put_u64(out, key.k as u64);
    put_u64(out, key.repeats as u64);
    put_u64(out, key.seed);
    put_u64(out, key.max_rounds as u64);
    put_u64(out, key.max_operands as u64);
    out.push(model_code(key.model));
    put_f64(out, rec.cycles);
    put_f64(out, rec.busy_sum);
    put_f64(out, rec.busy_min);
    put_f64(out, rec.busy_max);
    put_f64(out, rec.rounds);
    put_u32(out, rec.columns);
}

fn decode_cycle_entry(r: &mut Reader) -> Result<(CycleKey, SerialLayerRecord), String> {
    let key = CycleKey {
        style: style_from(r.u8()?)?,
        encoding: encoding_from(r.u8()?)?,
        a_bits: r.u32()?,
        m: r.usize()?,
        n: r.usize()?,
        k: r.usize()?,
        repeats: r.usize()?,
        seed: r.u64()?,
        max_rounds: r.usize()?,
        max_operands: r.usize()?,
        model: model_from(r.u8()?)?,
    };
    let rec = SerialLayerRecord {
        cycles: r.f64()?,
        busy_sum: r.f64()?,
        busy_min: r.f64()?,
        busy_max: r.f64()?,
        rounds: r.f64()?,
        columns: r.u32()?,
    };
    Ok((key, rec))
}

fn encode_model_entry(out: &mut Vec<u8>, key: &ModelKey, rec: &ModelRecord) {
    out.push(style_code(key.style));
    put_dense(out, key.dense);
    out.push(encoding_code(key.encoding));
    put_precision(out, key.precision);
    put_u32(out, key.freq_mhz);
    put_u32(out, key.node_dnm);
    put_str(out, &key.model);
    put_u64(out, key.layers_hash);
    put_u64(out, key.seed);
    put_u64(out, key.max_rounds as u64);
    put_u64(out, key.max_operands as u64);
    out.push(model_code(key.cycle_model));
    put_u32(out, key.sram_kib);
    put_u32(out, key.sram_bw);
    put_u32(out, key.dram_bw);
    put_str(out, &rec.model);
    put_u64(out, rec.layers.len() as u64);
    for l in rec.layers.iter() {
        put_str(out, &l.name);
        put_u64(out, l.macs);
        put_f64(out, l.tiles);
        put_f64(out, l.cycles);
        put_f64(out, l.delay_us);
        put_f64(out, l.utilization);
        put_f64(out, l.energy_uj);
        put_f64(out, l.bytes_moved);
        put_f64(out, l.intensity_ops_per_byte);
        out.push(bound_code(l.bound));
    }
    put_u64(out, rec.total_macs);
    put_f64(out, rec.cycles);
    put_f64(out, rec.delay_us);
    put_f64(out, rec.energy_uj);
    put_f64(out, rec.utilization);
    put_f64(out, rec.area_um2);
    put_f64(out, rec.peak_tops);
    put_f64(out, rec.bytes_moved);
    put_f64(out, rec.intensity_ops_per_byte);
    out.push(bound_code(rec.bound));
    put_f64(out, rec.busy_sum);
}

fn decode_model_entry(r: &mut Reader) -> Result<(ModelKey, ModelRecord), String> {
    let key = ModelKey {
        style: style_from(r.u8()?)?,
        dense: read_dense(r)?,
        encoding: encoding_from(r.u8()?)?,
        precision: read_precision(r)?,
        freq_mhz: r.u32()?,
        node_dnm: r.u32()?,
        model: r.str()?,
        layers_hash: r.u64()?,
        seed: r.u64()?,
        max_rounds: r.usize()?,
        max_operands: r.usize()?,
        cycle_model: model_from(r.u8()?)?,
        sram_kib: r.u32()?,
        sram_bw: r.u32()?,
        dram_bw: r.u32()?,
    };
    let model: std::sync::Arc<str> = r.str()?.into();
    let n_layers = r.usize()?;
    // A layer row is ≥ 64 encoded bytes; cap the reservation to what the
    // remaining payload could actually hold (the count itself is
    // checksum-protected, but a colliding corruption must not balloon
    // allocation — truncation then rejects inside the loop).
    let mut layers = Vec::with_capacity(n_layers.min(r.remaining() / 64));
    for _ in 0..n_layers {
        layers.push(LayerReport {
            name: r.str()?.into(),
            macs: r.u64()?,
            tiles: r.f64()?,
            cycles: r.f64()?,
            delay_us: r.f64()?,
            utilization: r.f64()?,
            energy_uj: r.f64()?,
            bytes_moved: r.f64()?,
            intensity_ops_per_byte: r.f64()?,
            bound: bound_from(r.u8()?)?,
        });
    }
    let rec = ModelRecord {
        model,
        layers: layers.into(),
        total_macs: r.u64()?,
        cycles: r.f64()?,
        delay_us: r.f64()?,
        energy_uj: r.f64()?,
        utilization: r.f64()?,
        area_um2: r.f64()?,
        peak_tops: r.f64()?,
        bytes_moved: r.f64()?,
        intensity_ops_per_byte: r.f64()?,
        bound: bound_from(r.u8()?)?,
        busy_sum: r.f64()?,
    };
    Ok((key, rec))
}

/// fnv1a over raw bytes (same constants as [`crate::fnv1a`], which is
/// defined over `&str`).
fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Encodes exported cache contents into the versioned snapshot format.
/// Entries are sorted by encoded bytes per map, so the same contents
/// produce the same bytes in any process (shard/HashMap order is not
/// stable).
pub fn encode(contents: &CacheContents) -> Vec<u8> {
    let sorted_map = |mut entries: Vec<Vec<u8>>| -> Vec<u8> {
        entries.sort_unstable();
        entries.concat()
    };
    let records = sorted_map(
        contents
            .records
            .iter()
            .map(|(k, v)| {
                let mut e = Vec::with_capacity(64);
                encode_record_entry(&mut e, k, v);
                e
            })
            .collect(),
    );
    let prices = sorted_map(
        contents
            .prices
            .iter()
            .map(|(k, v)| {
                let mut e = Vec::with_capacity(80);
                encode_price_entry(&mut e, k, v);
                e
            })
            .collect(),
    );
    let cycles = sorted_map(
        contents
            .cycles
            .iter()
            .map(|(k, v)| {
                let mut e = Vec::with_capacity(120);
                encode_cycle_entry(&mut e, k, v);
                e
            })
            .collect(),
    );
    let models = sorted_map(
        contents
            .models
            .iter()
            .map(|(k, v)| {
                let mut e = Vec::with_capacity(256 + 64 * v.layers.len());
                encode_model_entry(&mut e, k, v);
                e
            })
            .collect(),
    );

    let mut out =
        Vec::with_capacity(56 + records.len() + prices.len() + cycles.len() + models.len() + 8);
    out.extend_from_slice(SNAPSHOT_MAGIC);
    put_u32(&mut out, SNAPSHOT_VERSION);
    put_u64(&mut out, fnv1a_bytes(LAYOUT_DESCRIPTOR.as_bytes()));
    put_u64(&mut out, contents.records.len() as u64);
    put_u64(&mut out, contents.prices.len() as u64);
    put_u64(&mut out, contents.cycles.len() as u64);
    put_u64(&mut out, contents.models.len() as u64);
    out.extend_from_slice(&records);
    out.extend_from_slice(&prices);
    out.extend_from_slice(&cycles);
    out.extend_from_slice(&models);
    let checksum = fnv1a_bytes(&out[SNAPSHOT_MAGIC.len()..]);
    put_u64(&mut out, checksum);
    out
}

/// Decodes a snapshot, strict-rejecting anything that is not byte-exact:
/// wrong magic, version or layout hash, bad checksum, truncation, unknown
/// enum codes, or trailing garbage. A rejected snapshot costs a cold
/// sweep; a tolerated one could poison every derived result.
pub fn decode(bytes: &[u8]) -> Result<CacheContents, String> {
    let mut r = Reader::new(bytes);
    if r.take(SNAPSHOT_MAGIC.len())? != SNAPSHOT_MAGIC {
        return Err("not a TPECACHE snapshot (bad magic)".to_string());
    }
    if bytes.len() < SNAPSHOT_MAGIC.len() + 8 {
        return Err("truncated snapshot (no checksum)".to_string());
    }
    let payload_end = bytes.len() - 8;
    let stored = u64::from_le_bytes(bytes[payload_end..].try_into().unwrap());
    let actual = fnv1a_bytes(&bytes[SNAPSHOT_MAGIC.len()..payload_end]);
    if stored != actual {
        return Err(format!(
            "snapshot checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
        ));
    }
    let version = r.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(format!(
            "snapshot version {version} != supported {SNAPSHOT_VERSION} (no migration: \
             re-warm and re-save)"
        ));
    }
    let layout = r.u64()?;
    let expected = fnv1a_bytes(LAYOUT_DESCRIPTOR.as_bytes());
    if layout != expected {
        return Err(format!(
            "snapshot layout hash {layout:#018x} != expected {expected:#018x} \
             (written by an incompatible build)"
        ));
    }
    let n_records = r.usize()?;
    let n_prices = r.usize()?;
    let n_cycles = r.usize()?;
    let n_models = r.usize()?;
    let mut contents = CacheContents::default();
    // Counts are checksum-protected, but cap reservations to what the
    // payload could possibly hold so a corrupt-but-colliding count can't
    // balloon allocation.
    let cap = payload_end.saturating_sub(r.pos);
    contents.records.reserve(n_records.min(cap / 30));
    contents.prices.reserve(n_prices.min(cap / 30));
    contents.cycles.reserve(n_cycles.min(cap / 30));
    contents.models.reserve(n_models.min(cap / 64));
    for _ in 0..n_records {
        contents.records.push(decode_record_entry(&mut r)?);
    }
    for _ in 0..n_prices {
        contents.prices.push(decode_price_entry(&mut r)?);
    }
    for _ in 0..n_cycles {
        contents.cycles.push(decode_cycle_entry(&mut r)?);
    }
    for _ in 0..n_models {
        contents.models.push(decode_model_entry(&mut r)?);
    }
    if r.pos != payload_end {
        return Err(format!(
            "snapshot has {} trailing bytes after the last entry",
            payload_end - r.pos
        ));
    }
    Ok(contents)
}

/// Persistence metrics, registered once on the global registry: save and
/// load wall-clock spans, the entry count of the last snapshot touched
/// (`gauge_snapshot_entries` in the metrics op), and strict-reject count
/// (`ctr_snapshot_rejected`).
struct SnapObs {
    save_ns: Arc<tpe_obs::Histogram>,
    load_ns: Arc<tpe_obs::Histogram>,
    entries: Arc<tpe_obs::Gauge>,
    rejected: Arc<tpe_obs::Counter>,
}

fn snap_obs() -> &'static SnapObs {
    static OBS: OnceLock<SnapObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let reg = tpe_obs::Registry::global();
        SnapObs {
            save_ns: reg.histogram("snapshot_save_ns"),
            load_ns: reg.histogram("snapshot_load_ns"),
            entries: reg.gauge("snapshot_entries"),
            rejected: reg.counter("snapshot_rejected"),
        }
    })
}

/// Exports `cache` and writes the snapshot to `path` atomically: the
/// bytes land in `<path>.tmp` first and are renamed into place, so a
/// concurrent reader (or a crash mid-write) sees either the old complete
/// snapshot or the new one, never a torn file.
pub fn save(cache: &EngineCache, path: &Path) -> Result<SnapshotInfo, String> {
    let obs = snap_obs();
    let _span = obs.save_ns.span();
    let contents = cache.export();
    let entries = contents.len();
    let bytes = encode(&contents);
    let tmp = {
        let mut os = path.as_os_str().to_os_string();
        os.push(".tmp");
        std::path::PathBuf::from(os)
    };
    std::fs::write(&tmp, &bytes).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        format!("rename {} -> {}: {e}", tmp.display(), path.display())
    })?;
    obs.entries.set(entries as i64);
    Ok(SnapshotInfo {
        entries,
        bytes: bytes.len(),
    })
}

/// Loads a snapshot from `path` into `cache` (first insert wins; see
/// [`EngineCache::import`]). A missing file is `Ok(None)` — a fresh
/// fleet member, not an error. Any other failure (unreadable, corrupt,
/// truncated, wrong version/layout) is a strict reject: counted on
/// `ctr_snapshot_rejected` and returned as `Err` so callers warn and
/// continue cold — results are never poisoned, and nothing panics.
pub fn load(cache: &EngineCache, path: &Path) -> Result<Option<SnapshotInfo>, String> {
    let obs = snap_obs();
    let _span = obs.load_ns.span();
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            obs.rejected.inc();
            return Err(format!("read {}: {e}", path.display()));
        }
    };
    let contents = decode(&bytes).map_err(|e| {
        obs.rejected.inc();
        format!("{}: {e}", path.display())
    })?;
    let info = SnapshotInfo {
        entries: contents.len(),
        bytes: bytes.len(),
    };
    obs.entries.set(info.entries as i64);
    cache.import(contents);
    Ok(Some(info))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::caps::SampleProfile;
    use crate::eval::Evaluator;
    use crate::spec::EngineSpec;
    use crate::workload::SweepWorkload;
    use tpe_workloads::{models, LayerShape};

    /// Warm a cache through the real evaluator: feasible + infeasible
    /// prices, sampled serial-cycle records, and a whole-model record.
    fn warmed() -> EngineCache {
        let cache = EngineCache::new();
        let layer = SweepWorkload::Layer(LayerShape::new("snap", 32, 64, 128, 1));
        for spec in [
            EngineSpec::serial(PeStyle::Opt4E, EncodingKind::EnT, 2.0),
            EngineSpec::serial(PeStyle::Opt3, EncodingKind::Csd, 1.5),
            EngineSpec::dense(PeStyle::Opt1, ClassicArch::Tpu, 1.5),
            EngineSpec::dense(PeStyle::TraditionalMac, ClassicArch::Tpu, 2.0), // walls
        ] {
            let _ = Evaluator::new(&cache).metrics(&spec, &layer, 7);
        }
        let spec = EngineSpec::serial(PeStyle::Opt4E, EncodingKind::EnT, 2.0);
        Evaluator::new(&cache)
            .model_report(&spec, &models::resnet18(), 7, SampleProfile::Quick.caps())
            .expect("feasible");
        assert!(!cache.is_empty());
        assert!(cache.models_len() > 0);
        cache
    }

    fn sorted_contents(cache: &EngineCache) -> Vec<u8> {
        encode(&cache.export())
    }

    #[test]
    fn snapshot_round_trips_including_infeasible_entries() {
        let cache = warmed();
        let contents = cache.export();
        assert!(
            contents.prices.iter().any(|(_, p)| p.is_none()),
            "the walled MAC corner must export as a cached infeasibility"
        );
        let decoded = decode(&encode(&contents)).unwrap();
        assert_eq!(decoded.len(), contents.len());
        // Import into a fresh cache: identical contents, byte-identical
        // re-encoding, and lookups hit without recomputing.
        let fresh = EngineCache::new();
        fresh.import(decoded);
        assert_eq!(sorted_contents(&fresh), sorted_contents(&cache));
        assert_eq!(fresh.entry_count(), cache.entry_count());
        assert_eq!(fresh.stats(), crate::cache::CacheStats::default());
    }

    #[test]
    fn encoding_is_deterministic_across_insert_orders() {
        let cache = warmed();
        let mut contents = cache.export();
        let bytes = encode(&contents);
        contents.records.reverse();
        contents.prices.reverse();
        contents.cycles.reverse();
        assert_eq!(encode(&contents), bytes, "entry order must not matter");
    }

    #[test]
    fn corrupt_truncated_and_future_snapshots_are_rejected() {
        let bytes = encode(&warmed().export());
        // Single-byte corruption anywhere in the payload.
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xff;
        assert!(decode(&corrupt).unwrap_err().contains("checksum"));
        // Truncation at every interesting boundary.
        for cut in [0, 4, SNAPSHOT_MAGIC.len(), bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} must reject");
        }
        // Version bump (checksum re-stamped so the version check itself
        // is what rejects).
        let mut future = bytes.clone();
        future[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
        let end = future.len() - 8;
        let sum = fnv1a_bytes(&future[SNAPSHOT_MAGIC.len()..end]);
        future[end..].copy_from_slice(&sum.to_le_bytes());
        assert!(decode(&future).unwrap_err().contains("version"));
        // Layout-hash drift, same re-stamping.
        let mut drifted = bytes.clone();
        drifted[12] ^= 0x01;
        let sum = fnv1a_bytes(&drifted[SNAPSHOT_MAGIC.len()..end]);
        drifted[end..].copy_from_slice(&sum.to_le_bytes());
        assert!(decode(&drifted).unwrap_err().contains("layout"));
        // Wrong magic.
        let mut alien = bytes;
        alien[0] = b'X';
        assert!(decode(&alien).unwrap_err().contains("magic"));
    }

    #[test]
    fn save_and_load_round_trip_through_disk() {
        let cache = warmed();
        let dir = std::env::temp_dir().join(format!("tpe-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.tpecache");

        let info = save(&cache, &path).unwrap();
        assert_eq!(info.entries, cache.entry_count());
        assert!(info.bytes > 0);
        assert!(!path.with_extension("tpecache.tmp").exists());

        let fresh = EngineCache::new();
        let loaded = load(&fresh, &path).unwrap().expect("file exists");
        assert_eq!(loaded, info);
        assert_eq!(sorted_contents(&fresh), sorted_contents(&cache));

        // A warm lookup after import is a hit, not a recompute.
        let spec = EngineSpec::serial(PeStyle::Opt4E, EncodingKind::EnT, 2.0);
        let layer = SweepWorkload::Layer(LayerShape::new("snap", 32, 64, 128, 1));
        let a = Evaluator::new(&cache).metrics(&spec, &layer, 7);
        let b = Evaluator::new(&fresh).metrics(&spec, &layer, 7);
        assert_eq!(a, b, "imported state must answer identically");
        let stats = fresh.stats();
        assert_eq!(stats.misses(), 0, "replay must be all hits: {stats:?}");
        assert!(stats.hits() > 0);

        // Missing file: fresh fleet member, not an error.
        assert_eq!(load(&fresh, &dir.join("absent")).unwrap(), None);

        // Corrupt file on disk: strict reject, cache untouched.
        let mut bad = std::fs::read(&path).unwrap();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xff;
        std::fs::write(&path, &bad).unwrap();
        let before = EngineCache::new();
        assert!(load(&before, &path).is_err());
        assert!(before.is_empty(), "rejected snapshot must not leak entries");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sampled_and_analytic_cycle_records_both_round_trip() {
        let cache = EngineCache::new();
        let spec = EngineSpec::serial(PeStyle::Opt4C, EncodingKind::EnT, 2.0);
        let layer = LayerShape::new("l", 16, 16, 64, 2);
        for profile in [SampleProfile::Quick.caps(), {
            let mut caps = SampleProfile::Quick.caps();
            caps.model = CycleModel::Analytic;
            caps
        }] {
            let key = CycleKey::of(&spec, &layer, 11, profile);
            cache.serial_record(key, || SerialLayerRecord {
                cycles: 42.0,
                busy_sum: 40.0,
                busy_min: 0.5,
                busy_max: 1.0,
                rounds: 2.0,
                columns: 32,
            });
        }
        let decoded = decode(&encode(&cache.export())).unwrap();
        assert_eq!(decoded.cycles.len(), 2);
        let models: Vec<CycleModel> = decoded.cycles.iter().map(|(k, _)| k.model).collect();
        assert!(models.contains(&CycleModel::Sampled));
        assert!(models.contains(&CycleModel::Analytic));
    }

    #[test]
    fn model_records_round_trip_and_replay_answers_from_the_model_map() {
        let cache = EngineCache::new();
        let spec = EngineSpec::serial(PeStyle::Opt4E, EncodingKind::EnT, 2.0);
        let net = models::resnet18();
        let caps = SampleProfile::Quick.caps();
        let report = Evaluator::new(&cache)
            .model_report(&spec, &net, 7, caps)
            .expect("feasible");

        let decoded = decode(&encode(&cache.export())).unwrap();
        assert_eq!(decoded.models.len(), 1, "one whole-model record");

        let fresh = EngineCache::new();
        fresh.import(decoded);
        let before = fresh.stats();
        let replay = Evaluator::new(&fresh)
            .model_report(&spec, &net, 7, caps)
            .expect("feasible");
        assert_eq!(replay, report, "imported model map must answer identically");
        let delta = fresh.stats().since(&before);
        assert_eq!(
            (delta.model_hits, delta.model_misses),
            (1, 0),
            "replay must be a pure model-map hit"
        );
        assert_eq!(delta.cycle_lookups, 0, "no per-layer rewalk on replay");
    }

    #[test]
    fn model_section_corruption_and_old_versions_are_rejected() {
        let bytes = encode(&warmed().export());
        let end = bytes.len() - 8;

        // Flip a byte inside the model section (it is the last section
        // before the checksum): checksum rejects.
        let mut corrupt = bytes.clone();
        corrupt[end - 16] ^= 0xff;
        assert!(decode(&corrupt).unwrap_err().contains("checksum"));

        // Shrink the model section (drop bytes just before the trailer)
        // and re-stamp the checksum so the structural validation is what
        // rejects the short model entry.
        let mut short: Vec<u8> = bytes[..end - 16].to_vec();
        short.extend_from_slice(&[0u8; 8]); // placeholder trailer
        let sum_end = short.len() - 8;
        let sum = fnv1a_bytes(&short[SNAPSHOT_MAGIC.len()..sum_end]);
        short[sum_end..].copy_from_slice(&sum.to_le_bytes());
        assert!(decode(&short).is_err(), "truncated model entry must reject");

        // Older layouts are strict-rejected by version, not silently
        // half-imported: the pre-model-map v1 and the pre-memory v2
        // (whose price/model keys have no corner and whose rows carry no
        // roofline fields) alike.
        for old in [1u32, 2] {
            let mut stale = bytes.clone();
            stale[8..12].copy_from_slice(&old.to_le_bytes());
            let sum = fnv1a_bytes(&stale[SNAPSHOT_MAGIC.len()..end]);
            stale[end..].copy_from_slice(&sum.to_le_bytes());
            assert!(
                decode(&stale).unwrap_err().contains("version"),
                "v{old} must be rejected by the version check"
            );
        }
    }
}
