//! The canonical evaluator: one (engine × workload) pair → one
//! [`Metrics`] row, through the process-wide cache.
//!
//! Every comparison in the paper (Tables I–VII, Figures 9–14) reduces to
//! pricing an (engine, workload) pair. The [`Evaluator`] is the single
//! implementation of that composition — synthesis (memoized on
//! [`PeKey`]) → node scaling → array support logic →
//! dense closed-form / serial sampled cycle models — consumed by the
//! `tpe-dse` sweep, the `tpe-pipeline` grid, the `repro` figure/table
//! experiments and the `repro serve` query front end. Results are
//! deterministic functions of (engine, workload, seed), so any two paths
//! that ask the same question get byte-identical answers.

use std::sync::{Arc, OnceLock};

use tpe_core::arch::{ArchKind, ArrayModel};
use tpe_cost::process::{scale_area_um2, scale_power_w, ProcessNode};
use tpe_obs::{Counter, Histogram, Registry};
use tpe_workloads::NetworkModel;

#[cfg(doc)]
use crate::cache::PriceKey;
use crate::cache::{EngineCache, ModelKey, ModelRecord, PeKey, PeRecord};
use crate::caps::{CycleModel, SampleProfile, SerialSampleCaps};
use crate::fnv1a;
use crate::report::ModelReport;
use crate::schedule::{cached_serial_cycles, layer_traffic};
use crate::spec::{Bound, EnginePrice, EngineSpec};
use crate::workload::SweepWorkload;

/// Re-exported from `tpe-core`: expected digits per operand of an encoder
/// on quantized-normal INT8 data (the serial peak-throughput divisor),
/// plus the width-generic variant behind the precision axis.
pub use tpe_core::arch::workload::{effective_numpps, effective_numpps_at};

/// Handles to the evaluator's process-wide stage metrics, resolved once
/// from [`Registry::global`] (see [`eval_obs`]). The cold stages —
/// synthesis, price assembly, serial-cycle sampling, model scheduling —
/// get span timers *inside* their miss closures, so warm (cached) paths
/// pay nothing beyond one relaxed counter increment.
pub(crate) struct EvalObs {
    /// `eval_synthesis_ns`: PE synthesis + node scaling (cold only).
    pub synthesis_ns: Arc<Histogram>,
    /// `eval_price_assemble_ns`: full engine-price assembly (cold only).
    pub price_assemble_ns: Arc<Histogram>,
    /// `eval_serial_sample_ns`: one serial-cycle sampling run (cold only).
    pub serial_sample_ns: Arc<Histogram>,
    /// `eval_serial_analytic_ns`: one closed-form serial-cycle evaluation
    /// (cold only, analytic mode).
    pub serial_analytic_ns: Arc<Histogram>,
    /// `eval_model_schedule_ns`: one whole-model schedule (includes its
    /// per-layer sampling, cold or warm).
    pub model_schedule_ns: Arc<Histogram>,
    /// `eval_model_assemble_ns`: one whole-model record assembly — the
    /// dedup'd walk behind the model cache's miss path (cold only; a
    /// model-map hit never runs it).
    pub model_assemble_ns: Arc<Histogram>,
    /// `eval_traffic_ns`: one per-layer memory-traffic computation (the
    /// roofline's byte accounting). A model-map hit never recomputes
    /// traffic; bare-layer metrics recompute it on every call — it is
    /// allocation-free and orders of magnitude below one cycle sample.
    pub traffic_ns: Arc<Histogram>,
    /// `eval_price_calls`: total [`Evaluator::price`] calls, hot or cold.
    pub price_calls: Arc<Counter>,
    /// `eval_metrics_calls`: total [`Evaluator::metrics`] calls.
    pub metrics_calls: Arc<Counter>,
    /// `ctr_layers_compute_bound`: layer rows whose roofline bound was
    /// compute (the only bound the `Unbounded` corner ever produces).
    pub layers_compute_bound: Arc<Counter>,
    /// `ctr_layers_sram_bound`: layer rows bound on SRAM bandwidth.
    pub layers_sram_bound: Arc<Counter>,
    /// `ctr_layers_dram_bound`: layer rows bound on DRAM bandwidth.
    pub layers_dram_bound: Arc<Counter>,
}

impl EvalObs {
    /// The per-bound layer counter (`ctr_layers_{compute,sram,dram}_bound`).
    pub fn bound_counter(&self, bound: Bound) -> &Counter {
        match bound {
            Bound::Compute => &self.layers_compute_bound,
            Bound::Sram => &self.layers_sram_bound,
            Bound::Dram => &self.layers_dram_bound,
        }
    }
}

/// The process-wide evaluator metric handles (registered on first use).
pub(crate) fn eval_obs() -> &'static EvalObs {
    static OBS: OnceLock<EvalObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let reg = Registry::global();
        EvalObs {
            synthesis_ns: reg.histogram("eval_synthesis_ns"),
            price_assemble_ns: reg.histogram("eval_price_assemble_ns"),
            serial_sample_ns: reg.histogram("eval_serial_sample_ns"),
            serial_analytic_ns: reg.histogram("eval_serial_analytic_ns"),
            model_schedule_ns: reg.histogram("eval_model_schedule_ns"),
            model_assemble_ns: reg.histogram("eval_model_assemble_ns"),
            traffic_ns: reg.histogram("eval_traffic_ns"),
            price_calls: reg.counter("eval_price_calls"),
            metrics_calls: reg.counter("eval_metrics_calls"),
            layers_compute_bound: reg.counter("layers_compute_bound"),
            layers_sram_bound: reg.counter("layers_sram_bound"),
            layers_dram_bound: reg.counter("layers_dram_bound"),
        }
    })
}

/// The objective vector of one feasible (engine, workload) evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Total array area (µm², node-scaled).
    pub area_um2: f64,
    /// Workload wall-clock (µs).
    pub delay_us: f64,
    /// Workload energy (µJ).
    pub energy_uj: f64,
    /// Energy per MAC (fJ).
    pub energy_per_mac_fj: f64,
    /// Sustained throughput on this workload (GOPS, 2 ops per MAC).
    pub throughput_gops: f64,
    /// Peak throughput (TOPS).
    pub peak_tops: f64,
    /// Average compute-lane utilization (busy fraction, 0–1;
    /// roofline-aware — stall cycles dilute it on finite corners).
    pub utilization: f64,
    /// Average power over the workload (W).
    pub power_w: f64,
    /// Total bytes moved across the memory boundary (workload sum).
    pub bytes_moved: f64,
    /// Arithmetic intensity: ops per byte moved (2 ops per MAC).
    pub intensity_ops_per_byte: f64,
    /// The binding roofline resource over the workload (always
    /// [`Bound::Compute`] on the `Unbounded` corner).
    pub bound: Bound,
}

/// The canonical evaluation stack, bound to a cache instance.
///
/// Most callers want [`Evaluator::global`]; isolated instances exist for
/// exact-count cache tests and honest cold-timing measurements.
#[derive(Debug, Clone, Copy)]
pub struct Evaluator<'c> {
    cache: &'c EngineCache,
    cycle_model: CycleModel,
}

impl<'c> Evaluator<'c> {
    /// An evaluator over an explicit cache instance (sampled cycle model).
    pub fn new(cache: &'c EngineCache) -> Self {
        Self {
            cache,
            cycle_model: CycleModel::Sampled,
        }
    }

    /// The evaluator over the process-wide global cache (sampled cycle
    /// model).
    pub fn global() -> Evaluator<'static> {
        Evaluator::new(EngineCache::global())
    }

    /// The same evaluator with the serial-cycle backend switched. The
    /// evaluator's mode is authoritative: it is stamped onto the sampling
    /// caps of every serial evaluation it issues, for [`Self::metrics`]
    /// and [`Self::model_report`] alike.
    pub fn with_cycle_model(self, model: CycleModel) -> Self {
        Self {
            cycle_model: model,
            ..self
        }
    }

    /// The serial-cycle backend this evaluator selects.
    pub fn cycle_model(&self) -> CycleModel {
        self.cycle_model
    }

    /// The cache this evaluator memoizes into.
    pub fn cache(&self) -> &'c EngineCache {
        self.cache
    }

    /// Prices the PE of an engine at its corner, through the cache.
    ///
    /// OPT3 carries its encoder inside the PE, so its design is built with
    /// the engine's encoding (`PeStyle::design_with_encoding_for`, and the
    /// cache key includes the encoding's recoder class). OPT4's encoders
    /// live in the array support logic, priced in [`Self::price`]. Every
    /// datapath width scales with the engine's precision — the cache key
    /// carries it, so W4/W8/W16 variants synthesize independently.
    pub fn pe_record(&self, spec: &EngineSpec) -> Option<PeRecord> {
        let key = PeKey::of(spec);
        self.cache.pe_record(key, || {
            let _span = eval_obs().synthesis_ns.span();
            let design = match spec.kind {
                ArchKind::Dense(_) => spec.arch_model().pe_design_for(spec.precision),
                ArchKind::Serial => spec
                    .style
                    .design_with_encoding_for(spec.encoding, spec.precision),
            };
            let report = design.synthesize(spec.freq_ghz)?;
            Some(PeRecord {
                area_um2: scale_area_um2(report.area_um2, ProcessNode::SMIC28, spec.node),
                // Busy/idle activity points are the shared
                // `tpe_cost::power` constants, so every consumer accounts
                // energy identically.
                active_power_uw: scale_power_w(
                    report.busy_power_uw(),
                    ProcessNode::SMIC28,
                    spec.node,
                ),
                idle_power_uw: scale_power_w(
                    report.idle_power_uw(),
                    ProcessNode::SMIC28,
                    spec.node,
                ),
                lanes: report.lanes,
            })
        })
    }

    /// Node-scaled area of the engine's support logic outside the PEs
    /// (SIMD lanes at the accumulator width, shared encoders at the
    /// multiplicand width, prefetch).
    pub fn support_area_um2(&self, spec: &EngineSpec) -> f64 {
        scale_area_um2(
            ArrayModel::new(spec.arch_model()).support_area_um2_with(spec.encoding, spec.precision),
            ProcessNode::SMIC28,
            spec.node,
        )
    }

    /// Prices the whole engine: cached PE synthesis, node scaling, array
    /// support logic. `None` when the PE cannot close timing.
    ///
    /// The assembled price is itself memoized (on the full
    /// [`PriceKey`]): the support-logic and
    /// effective-NumPPs arithmetic runs once per engine per process, so a
    /// warm price query is a single sharded map read.
    pub fn price(&self, spec: &EngineSpec) -> Option<EnginePrice> {
        eval_obs().price_calls.inc();
        self.price_uninstrumented(spec)
    }

    /// [`Self::price`] without the call counter — the criterion baseline
    /// that pins the instrumentation overhead of the warm path. Not part
    /// of the public API surface.
    #[doc(hidden)]
    pub fn price_uninstrumented(&self, spec: &EngineSpec) -> Option<EnginePrice> {
        let key = crate::cache::PriceKey::of(spec);
        self.cache.engine_price(key, || {
            let _span = eval_obs().price_assemble_ns.span();
            let record = self.pe_record(spec)?;
            Some(EnginePrice::from_record(
                spec,
                &record,
                self.support_area_um2(spec),
            ))
        })
    }

    /// Evaluates one (engine, workload) pair with the sweep seeding
    /// convention: the workload model draws from an RNG seeded by
    /// `seed ^ fnv1a(label)`, where the label is
    /// `"{engine}/{workload}"` — so results do not depend on evaluation
    /// order, and two consumers asking about the same pair with the same
    /// sweep seed get bit-identical metrics.
    ///
    /// Layer workloads sample under [`SampleProfile::Sweep`], whole-model
    /// workloads under [`SampleProfile::Model`] (see [`crate::caps`]).
    pub fn metrics(
        &self,
        spec: &EngineSpec,
        workload: &SweepWorkload,
        seed: u64,
    ) -> Option<Metrics> {
        eval_obs().metrics_calls.inc();
        let price = self.price(spec)?;

        let freq = spec.freq_ghz;
        let (cycles, busy_frac, model_rec) = match spec.kind {
            ArchKind::Dense(arch) => {
                let (cycles, rec) = match workload {
                    SweepWorkload::Layer(w) => (
                        arch.at_paper_config().estimate_cycles(w.m, w.n, w.k) as f64
                            * w.repeats as f64,
                        None,
                    ),
                    SweepWorkload::Model(net) => {
                        let point_seed =
                            seed ^ fnv1a(&format!("{}/{}", spec.label(), workload.name()));
                        let caps = SerialSampleCaps {
                            model: self.cycle_model,
                            ..SampleProfile::Model.caps_for(spec.precision)
                        };
                        // One model-map lookup; the record's cycle sum is
                        // bit-identical to the old `dense_model_cycles`
                        // accumulation (same closed-form terms, same
                        // order).
                        let rec = self.model_record(spec, &price, net, point_seed, caps);
                        (rec.cycles, Some(rec))
                    }
                };
                // Dense arrays clock every PE every cycle, useful or not.
                (cycles, 1.0, rec)
            }
            ArchKind::Serial => {
                let point_seed = seed ^ fnv1a(&format!("{}/{}", spec.label(), workload.name()));
                match workload {
                    SweepWorkload::Layer(layer) => {
                        let rec = cached_serial_cycles(
                            self.cache,
                            spec,
                            layer,
                            point_seed,
                            SerialSampleCaps {
                                model: self.cycle_model,
                                ..SampleProfile::Sweep.caps_for(spec.precision)
                            },
                        );
                        (rec.cycles, rec.utilization(), None)
                    }
                    SweepWorkload::Model(net) => {
                        let caps = SerialSampleCaps {
                            model: self.cycle_model,
                            ..SampleProfile::Model.caps_for(spec.precision)
                        };
                        // One model-map lookup; the pooled busy fraction
                        // reproduces `serial_model_cycles`' aggregate
                        // bit for bit (same f64 addition sequence, same
                        // 0-cycle guard).
                        let rec = self.model_record(spec, &price, net, point_seed, caps);
                        let mp = crate::schedule::serial_config(spec).mp;
                        let busy_frac = if rec.cycles > 0.0 {
                            rec.busy_sum / (rec.cycles * mp as f64)
                        } else {
                            0.0
                        };
                        (rec.cycles, busy_frac, Some(rec))
                    }
                }
            }
        };

        let macs = workload.macs() as f64;

        // The memory side: model records carry their roofline aggregates
        // (every layer row already bounded); a bare layer computes its
        // traffic here. `cycles` for a model workload is already the sum
        // of effective (bounded) layer cycles.
        let (eff_cycles, bytes_moved, intensity_ops_per_byte, bound) = match (&model_rec, workload)
        {
            (Some(rec), _) => (
                cycles,
                rec.bytes_moved,
                rec.intensity_ops_per_byte,
                rec.bound,
            ),
            (None, SweepWorkload::Layer(layer)) => {
                let traffic = {
                    let _span = eval_obs().traffic_ns.span();
                    layer_traffic(spec, layer)
                };
                let (eff, bound) = traffic.roofline(&spec.memory, cycles);
                eval_obs().bound_counter(bound).inc();
                (
                    eff,
                    traffic.total_bytes(),
                    traffic.intensity(workload.macs()),
                    bound,
                )
            }
            (None, SweepWorkload::Model(_)) => unreachable!("model workloads carry a record"),
        };

        let (delay_us, energy_uj, utilization) = if spec.memory.is_unbounded() {
            // The pre-memory arithmetic, expression for expression — the
            // sweep goldens pin these bit patterns.
            let delay_us = cycles / (freq * 1e3);
            // Energy: fJ per PE instance-cycle at the record's activity
            // levels.
            let pe_cycles = cycles * price.instances;
            let energy_uj = (pe_cycles * busy_frac * price.e_active_fj
                + pe_cycles * (1.0 - busy_frac) * price.e_idle_fj)
                * 1e-9;
            let utilization = match spec.kind {
                ArchKind::Dense(_) => (macs / (cycles * price.lanes_total)).min(1.0),
                ArchKind::Serial => busy_frac,
            };
            (delay_us, energy_uj, utilization)
        } else if let Some(rec) = &model_rec {
            // Bounded model workload: the per-layer rooflines already
            // shaped the record's aggregates — use them directly.
            (rec.delay_us, rec.energy_uj, rec.utilization)
        } else {
            // Bounded single layer: the array occupies `eff_cycles`
            // wall-clock cycles, `cycles` of them computing; stalls burn
            // idle power and dilute utilization.
            let delay_us = eff_cycles / (freq * 1e3);
            let active = cycles * busy_frac;
            let energy_uj = (active * price.e_active_fj + (eff_cycles - active) * price.e_idle_fj)
                * price.instances
                * 1e-9;
            let utilization = match spec.kind {
                ArchKind::Dense(_) => (macs / (eff_cycles * price.lanes_total)).min(1.0),
                ArchKind::Serial => busy_frac * (cycles / eff_cycles),
            };
            (delay_us, energy_uj, utilization)
        };

        Some(Metrics {
            area_um2: price.area_um2,
            delay_us,
            energy_uj,
            energy_per_mac_fj: energy_uj * 1e9 / macs,
            throughput_gops: 2.0 * macs / delay_us / 1e3,
            peak_tops: price.peak_tops,
            utilization,
            power_w: energy_uj / delay_us,
            bytes_moved,
            intensity_ops_per_byte,
            bound,
        })
    }

    /// Evaluates one whole model on one engine with the grid seeding
    /// convention (`seed ^ fnv1a("{engine}/{model}")`, per-layer seeds
    /// mixed inside). `None` when the engine fails timing.
    ///
    /// Served from the model map: a repeated report for the same
    /// (engine, model content, seed, caps, cycle model) is one cache
    /// lookup plus `Arc` refcount bumps — the per-layer path is not
    /// touched at all.
    pub fn model_report(
        &self,
        spec: &EngineSpec,
        net: &NetworkModel,
        seed: u64,
        caps: SerialSampleCaps,
    ) -> Option<ModelReport> {
        let price = self.price(spec)?;
        let cell_seed = seed ^ fnv1a(&format!("{}/{}", spec.label(), net.name));
        let caps = SerialSampleCaps {
            model: self.cycle_model,
            ..caps
        };
        Some(
            self.model_record(spec, &price, net, cell_seed, caps)
                .to_report(spec),
        )
    }

    /// The cached whole-model record for `(spec, net, seed, caps)`: one
    /// model-map lookup; a miss runs the dedup'd walk
    /// ([`crate::schedule::assemble_model_record`]) under the
    /// `eval_model_assemble_ns` span.
    fn model_record(
        &self,
        spec: &EngineSpec,
        price: &EnginePrice,
        net: &NetworkModel,
        seed: u64,
        caps: SerialSampleCaps,
    ) -> ModelRecord {
        let key = ModelKey::of(spec, net, seed, caps);
        self.cache.model_record(key, || {
            let _span = eval_obs().model_assemble_ns.span();
            crate::schedule::assemble_model_record(self.cache, spec, price, net, seed, caps)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpe_arith::encode::EncodingKind;
    use tpe_core::arch::PeStyle;
    use tpe_sim::array::ClassicArch;
    use tpe_workloads::{models, LayerShape};

    fn layer_workload() -> SweepWorkload {
        SweepWorkload::Layer(LayerShape::new("l2.0-3x3s2", 128, 28 * 28, 1152, 1))
    }

    #[test]
    fn dense_and_serial_specs_produce_finite_metrics() {
        let cache = EngineCache::new();
        let eval = Evaluator::new(&cache);
        for spec in [
            EngineSpec::dense(PeStyle::TraditionalMac, ClassicArch::Tpu, 1.0),
            EngineSpec::serial(PeStyle::Opt3, EncodingKind::EnT, 2.0),
        ] {
            let m = eval
                .metrics(&spec, &layer_workload(), 42)
                .expect("feasible");
            for (name, v) in [
                ("area", m.area_um2),
                ("delay", m.delay_us),
                ("energy", m.energy_uj),
                ("fJ/MAC", m.energy_per_mac_fj),
                ("GOPS", m.throughput_gops),
                ("TOPS", m.peak_tops),
                ("power", m.power_w),
            ] {
                assert!(v.is_finite() && v > 0.0, "{}: {name} = {v}", spec.label());
            }
            assert!((0.0..=1.0).contains(&m.utilization));
        }
    }

    #[test]
    fn mac_is_infeasible_beyond_its_frequency_wall() {
        let cache = EngineCache::new();
        let eval = Evaluator::new(&cache);
        let spec = EngineSpec::dense(PeStyle::TraditionalMac, ClassicArch::Tpu, 2.0);
        assert!(eval.metrics(&spec, &layer_workload(), 42).is_none());
    }

    #[test]
    fn effective_numpps_orders_encoders_as_table3() {
        let ent = effective_numpps(EncodingKind::EnT.encoder().as_ref());
        let mbe = effective_numpps(EncodingKind::Mbe.encoder().as_ref());
        let bsc = effective_numpps(EncodingKind::BitSerialComplement.encoder().as_ref());
        assert!(ent < mbe, "EN-T {ent} must beat MBE {mbe}");
        assert!(mbe < bsc, "MBE {mbe} must beat bit-serial {bsc}");
        assert!(
            (2.0..2.5).contains(&ent),
            "EN-T effective NumPPs {ent} vs paper 2.22-2.27"
        );
    }

    #[test]
    fn encoding_axis_changes_serial_delay() {
        let cache = EngineCache::new();
        let eval = Evaluator::new(&cache);
        let w = layer_workload();
        let ent = EngineSpec::serial(PeStyle::Opt3, EncodingKind::EnT, 2.0);
        let bss = EngineSpec::serial(PeStyle::Opt3, EncodingKind::BitSerialComplement, 2.0);
        let (e, b) = (
            eval.metrics(&ent, &w, 7).unwrap(),
            eval.metrics(&bss, &w, 7).unwrap(),
        );
        assert!(
            e.delay_us < b.delay_us,
            "EN-T ({}) must stream fewer digits than bit-serial ({})",
            e.delay_us,
            b.delay_us
        );
    }

    #[test]
    fn encoding_axis_prices_encoder_hardware() {
        let cache = EngineCache::new();
        let eval = Evaluator::new(&cache);
        let area = |style, enc| {
            eval.price(&EngineSpec::serial(style, enc, 2.0))
                .unwrap()
                .area_um2
        };
        // OPT3 carries the encoder in-PE: the plain Booth recoder and the
        // bit-serial zero-skip unit are both cheaper than EN-T's
        // carry-chained recoder.
        let opt3_ent = area(PeStyle::Opt3, EncodingKind::EnT);
        assert!(area(PeStyle::Opt3, EncodingKind::Mbe) < opt3_ent);
        assert!(area(PeStyle::Opt3, EncodingKind::BitSerialComplement) < opt3_ent);
        // OPT4C's shared encoders reprice in the support logic too.
        let opt4c_ent = area(PeStyle::Opt4C, EncodingKind::EnT);
        assert!(area(PeStyle::Opt4C, EncodingKind::Mbe) < opt4c_ent);
    }

    #[test]
    fn opt3_cache_key_distinguishes_encodings_but_opt4_shares() {
        let cache = EngineCache::new();
        let eval = Evaluator::new(&cache);
        eval.price(&EngineSpec::serial(PeStyle::Opt3, EncodingKind::EnT, 2.0));
        eval.price(&EngineSpec::serial(PeStyle::Opt3, EncodingKind::Mbe, 2.0));
        assert_eq!(
            cache.stats().price_misses,
            2,
            "in-PE encoder is cost-relevant"
        );
        eval.price(&EngineSpec::serial(PeStyle::Opt4C, EncodingKind::EnT, 2.0));
        eval.price(&EngineSpec::serial(PeStyle::Opt4C, EncodingKind::Mbe, 2.0));
        assert_eq!(
            cache.stats().price_misses,
            3,
            "OPT4C's PE has no encoder; encodings share one synthesis"
        );
    }

    /// The five-encoding OPT3 axis prices only three distinct recoders:
    /// EN-T/CSD share the carry-chained recoder and the two bit-serial
    /// kinds share the zero-skip unit, so canonicalizing the price key
    /// lifts the hit rate from 0/5 to 2/5 on this slice.
    #[test]
    fn opt3_encoding_hardware_classes_share_cache_entries() {
        let cache = EngineCache::new();
        let eval = Evaluator::new(&cache);
        for kind in EncodingKind::ALL {
            eval.price(&EngineSpec::serial(PeStyle::Opt3, kind, 2.0));
        }
        let stats = cache.stats();
        assert_eq!(
            (stats.price_hits, stats.price_misses),
            (2, 3),
            "EN-T+CSD and the two bit-serial kinds must share entries"
        );
        assert!(stats.hit_rate() > 0.39);
    }

    /// The acceptance invariant of the precision axis: for a fixed engine,
    /// array area and serial cycle counts strictly increase W4 → W8 → W16
    /// (wider operands synthesize bigger PEs and stream more digits), and
    /// the precision-keyed cache treats each width as its own entry.
    #[test]
    fn area_and_serial_cycles_strictly_increase_with_precision() {
        use tpe_arith::Precision;
        let cache = EngineCache::new();
        let eval = Evaluator::new(&cache);
        let ladder = [Precision::W4, Precision::W8, Precision::W16];
        for base in [
            EngineSpec::serial(PeStyle::Opt3, EncodingKind::EnT, 2.0),
            EngineSpec::serial(PeStyle::Opt4E, EncodingKind::EnT, 2.0),
            EngineSpec::dense(PeStyle::Opt1, ClassicArch::Tpu, 1.5),
            EngineSpec::dense(PeStyle::TraditionalMac, ClassicArch::Ascend, 1.0),
        ] {
            let areas: Vec<f64> = ladder
                .iter()
                .map(|&p| {
                    eval.price(&base.clone().with_precision(p))
                        .unwrap_or_else(|| panic!("{} fails timing", base.label()))
                        .area_um2
                })
                .collect();
            assert!(
                areas[0] < areas[1] && areas[1] < areas[2],
                "{}: areas not strictly increasing over W4/W8/W16: {areas:?}",
                base.label()
            );
        }
        for base in [
            EngineSpec::serial(PeStyle::Opt3, EncodingKind::EnT, 2.0),
            EngineSpec::serial(PeStyle::Opt4C, EncodingKind::Csd, 2.5),
        ] {
            let w = layer_workload();
            let delays: Vec<f64> = ladder
                .iter()
                .map(|&p| {
                    eval.metrics(&base.clone().with_precision(p), &w, 7)
                        .unwrap()
                        .delay_us
                })
                .collect();
            assert!(
                delays[0] < delays[1] && delays[1] < delays[2],
                "{}: serial delay not strictly increasing over W4/W8/W16: {delays:?}",
                base.label()
            );
        }
        // Peak throughput moves the other way: fewer digits per operand.
        let peak = |p| {
            eval.price(
                &EngineSpec::serial(PeStyle::Opt4E, EncodingKind::EnT, 2.0).with_precision(p),
            )
            .unwrap()
            .peak_tops
        };
        assert!(peak(tpe_arith::Precision::W4) > peak(tpe_arith::Precision::W8));
        assert!(peak(tpe_arith::Precision::W8) > peak(tpe_arith::Precision::W16));
    }

    /// Distinct precisions never share cache entries; identical precision
    /// queries do.
    #[test]
    fn precision_is_part_of_every_cache_key() {
        use tpe_arith::Precision;
        let cache = EngineCache::new();
        let eval = Evaluator::new(&cache);
        let base = EngineSpec::serial(PeStyle::Opt4C, EncodingKind::EnT, 2.5);
        for p in [Precision::W8, Precision::W4, Precision::W16] {
            eval.price(&base.clone().with_precision(p));
        }
        assert_eq!(
            cache.stats().price_misses,
            3,
            "each precision must synthesize its own PE"
        );
        eval.price(&base.clone().with_precision(Precision::W4));
        assert_eq!(cache.stats().price_misses, 3, "repeat W4 must hit");
    }

    #[test]
    fn node_scaling_shrinks_area_and_power() {
        let cache = EngineCache::new();
        let eval = Evaluator::new(&cache);
        let w = layer_workload();
        let p28 = EngineSpec::serial(PeStyle::Opt4E, EncodingKind::EnT, 1.5);
        let p16 = p28.at_corner(crate::spec::Corner::n16(1.5));
        let m28 = eval.metrics(&p28, &w, 1).unwrap();
        let m16 = eval.metrics(&p16, &w, 1).unwrap();
        assert!(m16.area_um2 < m28.area_um2 * 0.5);
        assert!(m16.energy_uj < m28.energy_uj);
    }

    #[test]
    fn cache_prices_each_corner_once_across_workloads() {
        let cache = EngineCache::new();
        let eval = Evaluator::new(&cache);
        let spec = EngineSpec::serial(PeStyle::Opt4C, EncodingKind::EnT, 2.0);
        let workloads = [
            SweepWorkload::Layer(LayerShape::new("a", 64, 64, 64, 1)),
            SweepWorkload::Layer(LayerShape::new("b", 128, 64, 64, 1)),
            SweepWorkload::Model(models::resnet18()),
        ];
        for w in &workloads {
            eval.metrics(&spec, w, 3);
        }
        let stats = cache.stats();
        assert_eq!(stats.price_misses, 1);
        assert_eq!(stats.price_hits, workloads.len() as u64 - 1);
    }

    /// The metrics path and the price path are one implementation: pinned
    /// bit-identical so they can never drift apart again.
    #[test]
    fn metrics_and_price_agree_bit_for_bit() {
        let cache = EngineCache::new();
        let eval = Evaluator::new(&cache);
        for spec in [
            EngineSpec::dense(PeStyle::TraditionalMac, ClassicArch::Tpu, 1.0),
            EngineSpec::dense(PeStyle::Opt1, ClassicArch::Ascend, 1.5),
            EngineSpec::serial(PeStyle::Opt3, EncodingKind::Csd, 2.0),
            EngineSpec::serial(PeStyle::Opt4E, EncodingKind::EnT, 2.0),
        ] {
            let m = eval.metrics(&spec, &layer_workload(), 1).unwrap();
            let p = eval.price(&spec).unwrap();
            assert_eq!(m.area_um2.to_bits(), p.area_um2.to_bits());
            assert_eq!(m.peak_tops.to_bits(), p.peak_tops.to_bits());
        }
    }

    /// A warm rerun of an identical model evaluation is served entirely
    /// from memory: zero synthesis, zero sampling (isolated cache, so the
    /// counters are exact).
    #[test]
    fn warm_model_rerun_adds_zero_misses() {
        let cache = EngineCache::new();
        let eval = Evaluator::new(&cache);
        let spec = EngineSpec::serial(PeStyle::Opt4E, EncodingKind::EnT, 2.0);
        let net = models::resnet18();
        let caps = SampleProfile::Quick.caps();
        let first = eval.model_report(&spec, &net, 77, caps).unwrap();
        let before = cache.stats();
        let second = eval.model_report(&spec, &net, 77, caps).unwrap();
        let delta = cache.stats().since(&before);
        assert_eq!(first, second);
        assert_eq!(delta.misses(), 0, "warm rerun must be all hits: {delta:?}");
        assert!(delta.hits() > 0);
    }

    /// A warm model report is exactly one model-map hit: the per-layer
    /// cycle counters must not move at all (the rewalk is gone, not just
    /// cheap).
    #[test]
    fn warm_model_report_is_a_single_model_map_hit() {
        let cache = EngineCache::new();
        let eval = Evaluator::new(&cache);
        let spec = EngineSpec::serial(PeStyle::Opt4E, EncodingKind::EnT, 2.0);
        let net = models::resnet18();
        let caps = SampleProfile::Quick.caps();
        eval.model_report(&spec, &net, 77, caps).unwrap();
        let before = cache.stats();
        let report = eval.model_report(&spec, &net, 77, caps).unwrap();
        let delta = cache.stats().since(&before);
        assert_eq!((delta.model_hits, delta.model_misses), (1, 0));
        assert_eq!(delta.cycle_lookups, 0, "layer path untouched on a hit");
        assert_eq!(delta.price_hits, 1, "the price probe still counts");
        assert_eq!(report.layer_count(), net.layers.len());
    }

    /// Repeated `SweepWorkload::Model` metrics collapse to one model-map
    /// lookup — dense and serial engines alike — and reproduce the first
    /// answer bit for bit.
    #[test]
    fn model_workload_metrics_hit_the_model_map() {
        let cache = EngineCache::new();
        let eval = Evaluator::new(&cache);
        let w = SweepWorkload::Model(models::mobilenet_v3());
        for spec in [
            EngineSpec::serial(PeStyle::Opt4E, EncodingKind::EnT, 2.0),
            EngineSpec::dense(PeStyle::TraditionalMac, ClassicArch::Tpu, 1.0),
        ] {
            let m1 = eval.metrics(&spec, &w, 3).unwrap();
            let before = cache.stats();
            let m2 = eval.metrics(&spec, &w, 3).unwrap();
            assert_eq!(m1, m2);
            let delta = cache.stats().since(&before);
            assert_eq!(
                (delta.model_hits, delta.model_misses),
                (1, 0),
                "{}",
                spec.label()
            );
            assert_eq!(delta.cycle_lookups, 0, "{}", spec.label());
        }
    }

    /// The memory axis end to end: unbounded metrics report compute-bound
    /// with positive traffic; a starved corner flips the bound, stretches
    /// delay, and keys its own cache entries.
    #[test]
    fn finite_memory_corners_flip_the_metrics_bound() {
        use crate::spec::MemorySpec;
        let cache = EngineCache::new();
        let eval = Evaluator::new(&cache);
        let base = EngineSpec::dense(PeStyle::TraditionalMac, ClassicArch::Tpu, 1.0);
        let w = layer_workload();
        let free = eval.metrics(&base, &w, 42).unwrap();
        assert_eq!(free.bound, Bound::Compute);
        assert!(free.bytes_moved > 0.0);
        assert!(free.intensity_ops_per_byte > 0.0);

        let starved = base.clone().with_memory(MemorySpec {
            sram_kib: 64,
            sram_bw: 1,
            dram_bw: 1,
            name: "starved",
        });
        let bound = eval.metrics(&starved, &w, 42).unwrap();
        assert_ne!(bound.bound, Bound::Compute);
        assert!(
            bound.delay_us > free.delay_us,
            "roofline must stretch the delay: {} vs {}",
            bound.delay_us,
            free.delay_us
        );
        assert!(bound.utilization < free.utilization);
        assert_eq!(bound.bytes_moved, free.bytes_moved);
        assert_eq!(
            bound.area_um2.to_bits(),
            free.area_um2.to_bits(),
            "pricing is memory-independent"
        );

        // Model workloads flip too, via the per-layer rooflines.
        let net = SweepWorkload::Model(models::resnet18());
        let m_free = eval.metrics(&base, &net, 42).unwrap();
        let m_bound = eval.metrics(&starved, &net, 42).unwrap();
        assert_eq!(m_free.bound, Bound::Compute);
        assert_ne!(m_bound.bound, Bound::Compute);
        assert!(m_bound.delay_us > m_free.delay_us);
    }

    /// An `edge`-corner model report stays internally consistent: layer
    /// bound classes are delay-weighted into the model bound, and bytes
    /// aggregate as sums.
    #[test]
    fn bounded_model_report_aggregates_layer_rooflines() {
        use crate::spec::MemorySpec;
        let cache = EngineCache::new();
        let eval = Evaluator::new(&cache);
        let spec = EngineSpec::dense(PeStyle::TraditionalMac, ClassicArch::Tpu, 1.0)
            .with_memory(MemorySpec::edge());
        let net = models::resnet18();
        let caps = SampleProfile::Quick.caps();
        let r = eval.model_report(&spec, &net, 7, caps).unwrap();
        let bytes: f64 = r.layers.iter().map(|l| l.bytes_moved).sum();
        assert_eq!(r.bytes_moved.to_bits(), bytes.to_bits());
        for l in r.layers.iter() {
            assert!(l.bytes_moved > 0.0, "{}", l.name);
        }
    }

    /// The model-report path agrees with the free-function composition the
    /// grid executor uses.
    #[test]
    fn model_report_matches_grid_composition() {
        let cache = EngineCache::new();
        let eval = Evaluator::new(&cache);
        let spec = EngineSpec::dense(PeStyle::Opt1, ClassicArch::Tpu, 1.5);
        let net = models::resnet18();
        let caps = SampleProfile::Quick.caps();
        let r = eval.model_report(&spec, &net, 5, caps).unwrap();
        let price = eval.price(&spec).unwrap();
        let seed = 5 ^ fnv1a(&format!("{}/{}", spec.label(), net.name));
        let direct = crate::schedule::evaluate_model_with(&cache, &spec, &price, &net, seed, caps);
        assert_eq!(r, direct);
    }
}
