//! The workload half of an evaluation query: one GEMM layer or a whole
//! network.

use tpe_workloads::{LayerShape, NetworkModel};

/// The workload axis of an evaluation: either one GEMM-shaped layer
/// (the Figure 11 texture) or a whole network evaluated end-to-end through
/// the model scheduler (the Figure 12/13 aggregates).
#[derive(Debug, Clone, PartialEq)]
pub enum SweepWorkload {
    /// A single img2col-lowered GEMM layer.
    Layer(LayerShape),
    /// A whole network, summed layer by layer.
    Model(NetworkModel),
}

impl SweepWorkload {
    /// Display / grouping name (layer label or network name).
    pub fn name(&self) -> &str {
        match self {
            SweepWorkload::Layer(l) => &l.name,
            SweepWorkload::Model(n) => &n.name,
        }
    }

    /// Total useful multiply–accumulates.
    pub fn macs(&self) -> u64 {
        match self {
            SweepWorkload::Layer(l) => l.macs(),
            SweepWorkload::Model(n) => n.total_macs(),
        }
    }

    /// Number of GEMM layers (1 for a single layer).
    pub fn layer_count(&self) -> usize {
        match self {
            SweepWorkload::Layer(_) => 1,
            SweepWorkload::Model(n) => n.layers.len(),
        }
    }
}

impl From<LayerShape> for SweepWorkload {
    fn from(layer: LayerShape) -> Self {
        SweepWorkload::Layer(layer)
    }
}

impl From<NetworkModel> for SweepWorkload {
    fn from(net: NetworkModel) -> Self {
        SweepWorkload::Model(net)
    }
}
