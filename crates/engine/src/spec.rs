//! Execution engines: the (PE style × array × encoding × corner) targets a
//! workload is priced and scheduled onto.
//!
//! An [`EngineSpec`] is the architecture half of a design point —
//! everything except the workload. It is the single identity every
//! evaluation path keys on: `repro dse` points, `repro models` grid cells,
//! the `repro` figure/table experiments and `repro serve` queries all
//! resolve to an `EngineSpec` before anything is priced, so one engine is
//! priced exactly once per process (see [`crate::cache::EngineCache`]).

use tpe_arith::encode::EncodingKind;
use tpe_arith::Precision;
use tpe_core::arch::array::ARRAY_OVERHEAD_FRAC;
use tpe_core::arch::workload::effective_numpps_at;
use tpe_core::arch::{ArchKind, ArchModel, PeStyle};
use tpe_cost::process::ProcessNode;
use tpe_sim::array::ClassicArch;

use crate::cache::PeRecord;

/// A synthesis corner: clock constraint + process node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Corner {
    /// Clock constraint in GHz.
    pub freq_ghz: f64,
    /// Process node costs are scaled to (the model is calibrated at
    /// SMIC 28 nm; other nodes use first-order scaling).
    pub node: ProcessNode,
    /// Display name of the node.
    pub node_name: &'static str,
}

impl Corner {
    /// SMIC 28 nm (the paper's node) at `freq_ghz`.
    pub fn smic28(freq_ghz: f64) -> Self {
        Self {
            freq_ghz,
            node: ProcessNode::SMIC28,
            node_name: "28nm",
        }
    }

    /// 16 nm FinFET at `freq_ghz` (first-order scaled).
    pub fn n16(freq_ghz: f64) -> Self {
        Self {
            freq_ghz,
            node: ProcessNode::N16,
            node_name: "16nm",
        }
    }

    /// Stable display label ("28nm@1.50GHz").
    pub fn label(&self) -> String {
        format!("{}@{:.2}GHz", self.node_name, self.freq_ghz)
    }
}

/// One fully-specified execution engine (a design point minus workload).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSpec {
    /// PE microarchitecture (Figure 9).
    pub style: PeStyle,
    /// Array organization (Table VII).
    pub kind: ArchKind,
    /// Multiplicand encoding (serial datapaths; dense multipliers carry
    /// their built-in Booth encoding).
    pub encoding: EncodingKind,
    /// Operand/accumulator precision the datapath is synthesized for
    /// ([`Precision::W8`] is the paper's configuration and the default;
    /// labels carry a `@W4`-style suffix for anything else).
    pub precision: Precision,
    /// Clock in GHz.
    pub freq_ghz: f64,
    /// Process node costs are scaled to.
    pub node: ProcessNode,
    /// Display name of the node.
    pub node_name: &'static str,
}

impl EngineSpec {
    /// A dense engine (classic topology) at SMIC 28 nm, W8 precision.
    pub fn dense(style: PeStyle, arch: ClassicArch, freq_ghz: f64) -> Self {
        Self {
            style,
            kind: ArchKind::Dense(arch),
            encoding: EncodingKind::Mbe,
            precision: Precision::W8,
            freq_ghz,
            node: ProcessNode::SMIC28,
            node_name: "28nm",
        }
    }

    /// A serial (column-synchronous) engine at SMIC 28 nm, W8 precision.
    pub fn serial(style: PeStyle, encoding: EncodingKind, freq_ghz: f64) -> Self {
        Self {
            style,
            kind: ArchKind::Serial,
            encoding,
            precision: Precision::W8,
            freq_ghz,
            node: ProcessNode::SMIC28,
            node_name: "28nm",
        }
    }

    /// The same engine synthesized for a different operand precision.
    pub fn with_precision(self, precision: Precision) -> Self {
        Self { precision, ..self }
    }

    /// The Table VII roster (see [`crate::roster`] for the named registry).
    pub fn paper_roster() -> Vec<EngineSpec> {
        crate::roster::paper_roster()
    }

    /// The engine's synthesis corner.
    pub fn corner(&self) -> Corner {
        Corner {
            freq_ghz: self.freq_ghz,
            node: self.node,
            node_name: self.node_name,
        }
    }

    /// The same architecture at a different corner.
    pub fn at_corner(&self, corner: Corner) -> Self {
        Self {
            freq_ghz: corner.freq_ghz,
            node: corner.node,
            node_name: corner.node_name,
            ..self.clone()
        }
    }

    /// Architecture half of the label ("OPT1(TPU)", "OPT3\[EN-T\]").
    pub fn arch_label(&self) -> String {
        match self.kind {
            ArchKind::Dense(arch) => format!("{}({})", self.style.name(), classic_name(arch)),
            ArchKind::Serial => format!("{}[{}]", self.style.name(), self.encoding),
        }
    }

    /// Full engine label, stable across runs — the seed/filter/CSV key
    /// ("OPT4E\[EN-T\]/28nm\@2.00GHz"). Non-default precisions append a
    /// `@W4`-style suffix ("OPT3\[EN-T\]/28nm\@2.00GHz\@W4") parsed back by
    /// [`crate::roster::find`]; the default W8 stays suffix-free so every
    /// historical label (and seed derived from it) is unchanged.
    pub fn label(&self) -> String {
        let base = format!(
            "{}/{}@{:.2}GHz",
            self.arch_label(),
            self.node_name,
            self.freq_ghz
        );
        if self.precision.is_default() {
            base
        } else {
            format!("{base}@{}", self.precision.label())
        }
    }

    /// PE instances at the paper's array sizes (10×10×10 Cube, else 32×32).
    pub fn pe_instances(&self) -> usize {
        match self.kind {
            ArchKind::Dense(ClassicArch::Ascend) => 1000,
            _ => 1024,
        }
    }

    /// The equivalent `tpe-core` architecture model.
    pub fn arch_model(&self) -> ArchModel {
        ArchModel {
            name: self.arch_label(),
            style: self.style,
            kind: self.kind,
            pe_instances: self.pe_instances(),
            freq_ghz: self.freq_ghz,
        }
    }

    /// Prices the engine through the process-wide cache: PE synthesis at
    /// the clock (memoized on [`crate::cache::PeKey`]), node scaling,
    /// array support logic. `None` when the PE cannot close timing.
    pub fn price(&self) -> Option<EnginePrice> {
        crate::eval::Evaluator::global().price(self)
    }
}

/// Display name of a classic dense topology.
pub fn classic_name(arch: ClassicArch) -> &'static str {
    match arch {
        ClassicArch::Tpu => "TPU",
        ClassicArch::Ascend => "Ascend",
        ClassicArch::Trapezoid => "Trapezoid",
        ClassicArch::FlexFlow => "FlexFlow",
    }
}

/// A priced engine: everything the scheduler needs to turn cycles into
/// delay, energy and efficiency figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnginePrice {
    /// Total array area (µm², node-scaled, support + overhead included).
    pub area_um2: f64,
    /// Energy per PE-instance-cycle while busy (fJ, [`tpe_cost::power::PE_BUSY`]).
    pub e_active_fj: f64,
    /// Energy per PE-instance-cycle while clock-gated (fJ,
    /// [`tpe_cost::power::PE_IDLE`]).
    pub e_idle_fj: f64,
    /// PE (or PE-group) instances in the array.
    pub instances: f64,
    /// Total MAC-equivalent lanes (instances × lanes per instance).
    pub lanes_total: f64,
    /// Peak throughput (TOPS; serial engines divide by effective NumPPs).
    pub peak_tops: f64,
}

impl EnginePrice {
    /// Assembles the array-level price from a cached per-PE record.
    ///
    /// This is the single place PE-level synthesis becomes array-level
    /// cost: support-logic area, the 2% interconnect overhead and the
    /// peak-throughput accounting live here and nowhere else.
    pub fn from_record(spec: &EngineSpec, record: &PeRecord, support_um2: f64) -> Self {
        let instances = spec.pe_instances() as f64;
        let area_um2 = (record.area_um2 * instances + support_um2) * (1.0 + ARRAY_OVERHEAD_FRAC);
        let lanes_total = instances * f64::from(record.lanes);
        let freq = spec.freq_ghz;
        let raw_tops = lanes_total * 2.0 * freq * 1e9 / 1e12;
        let peak_tops = match spec.kind {
            ArchKind::Dense(_) => raw_tops,
            // Serial peak divides by the expected digits per operand at
            // the engine's multiplicand width — the precision axis's
            // linear serial cost law.
            ArchKind::Serial => {
                raw_tops
                    / effective_numpps_at(spec.encoding.encoder().as_ref(), spec.precision.a_bits)
            }
        };
        Self {
            area_um2,
            e_active_fj: record.active_power_uw / freq,
            e_idle_fj: record.idle_power_uw / freq,
            instances,
            lanes_total,
            peak_tops,
        }
    }

    /// Table VII's array power convention: every PE toggles at full
    /// datapath activity (dense sweeps keep all PEs busy; serial designs
    /// only skip *zero* digits), plus the interconnect overhead share.
    pub fn table7_power_w(&self, freq_ghz: f64) -> f64 {
        self.e_active_fj * freq_ghz * self.instances * 1e-6 * (1.0 + ARRAY_OVERHEAD_FRAC)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_covers_all_topologies_and_serial_styles() {
        let roster = EngineSpec::paper_roster();
        for arch in ClassicArch::ALL {
            assert!(
                roster.iter().any(|e| e.kind == ArchKind::Dense(arch)),
                "{arch:?} missing from roster"
            );
        }
        for style in [PeStyle::Opt3, PeStyle::Opt4C, PeStyle::Opt4E] {
            assert!(roster.iter().any(|e| e.style == style));
        }
        let mut labels: Vec<String> = roster.iter().map(EngineSpec::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), roster.len(), "duplicate engine labels");
    }

    #[test]
    fn every_roster_engine_prices_at_its_paper_clock() {
        for engine in EngineSpec::paper_roster() {
            let price = engine
                .price()
                .unwrap_or_else(|| panic!("{} fails timing", engine.label()));
            assert!(price.area_um2 > 0.0 && price.area_um2.is_finite());
            assert!(price.e_active_fj > price.e_idle_fj);
            assert!(price.peak_tops > 0.0);
        }
    }

    #[test]
    fn mac_engine_walls_beyond_1p5_ghz() {
        let mut e = EngineSpec::dense(PeStyle::TraditionalMac, ClassicArch::Tpu, 2.0);
        assert!(e.price().is_none());
        e.freq_ghz = 1.0;
        assert!(e.price().is_some());
    }

    #[test]
    fn serial_peak_tops_divides_by_effective_numpps() {
        let opt3 = EngineSpec::serial(PeStyle::Opt3, EncodingKind::EnT, 2.0)
            .price()
            .unwrap();
        // 1024 lanes × 2 ops × 2 GHz = 4.096 raw TOPS; EN-T's ~2.27
        // effective NumPPs lands near Table VII's 1.80 TOPS.
        assert!((1.6..2.1).contains(&opt3.peak_tops), "{}", opt3.peak_tops);
    }

    #[test]
    fn corner_round_trips_through_the_spec() {
        let spec = EngineSpec::serial(PeStyle::Opt4E, EncodingKind::EnT, 2.0);
        let corner = spec.corner();
        assert_eq!(corner.label(), "28nm@2.00GHz");
        let moved = spec.at_corner(Corner::n16(1.5));
        assert_eq!(moved.label(), "OPT4E[EN-T]/16nm@1.50GHz");
        assert_eq!(moved.arch_label(), spec.arch_label());
    }
}
