//! Execution engines: the (PE style × array × encoding × corner) targets a
//! workload is priced and scheduled onto.
//!
//! An [`EngineSpec`] is the architecture half of a design point —
//! everything except the workload. It is the single identity every
//! evaluation path keys on: `repro dse` points, `repro models` grid cells,
//! the `repro` figure/table experiments and `repro serve` queries all
//! resolve to an `EngineSpec` before anything is priced, so one engine is
//! priced exactly once per process (see [`crate::cache::EngineCache`]).

use tpe_arith::encode::EncodingKind;
use tpe_arith::Precision;
use tpe_core::arch::array::ARRAY_OVERHEAD_FRAC;
use tpe_core::arch::workload::effective_numpps_at;
use tpe_core::arch::{ArchKind, ArchModel, PeStyle};
use tpe_cost::process::ProcessNode;
use tpe_sim::array::ClassicArch;

use crate::cache::PeRecord;

/// SRAM port width in bytes per bank per cycle.
///
/// The on-chip bandwidth corners below are all `banks ×
/// SRAM_PORT_BYTES`: the bank geometry is the diagonally skewed layout of
/// `tpe_sim::memory::SkewedBankLayout` (§IV-C), where each of the array's
/// columns owns a private bank port per cycle. A 32-bank layout at this
/// port width therefore sustains 128 B/cycle — the arithmetic the
/// `memory_corners_tie_to_bank_geometry` test pins.
pub const SRAM_PORT_BYTES: u32 = 4;

/// An on-chip memory-hierarchy corner: SRAM capacity plus the SRAM and
/// DRAM bandwidths the roofline bounds effective delay against.
///
/// The default [`MemorySpec::unbounded`] corner models the pre-memory
/// evaluator exactly: no bandwidth ceiling, no capacity pressure, every
/// layer compute-bound — all historical numbers, labels and seeds are
/// reproduced bit-for-bit. Finite corners are named (see
/// [`crate::roster::memory_corners`]) and appear as a `@<name>` label
/// suffix after any precision suffix, parsed back by
/// [`crate::roster::find`].
///
/// All fields are integers so the corner can ride inside `Copy + Eq +
/// Hash` cache keys ([`crate::cache::PriceKey`],
/// [`crate::cache::ModelKey`]) without float-identity hazards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemorySpec {
    /// On-chip SRAM capacity in KiB; 0 means unbounded (everything fits).
    pub sram_kib: u32,
    /// SRAM bandwidth in bytes per cycle (`banks × SRAM_PORT_BYTES` for
    /// the banked corners); 0 means unbounded.
    pub sram_bw: u32,
    /// DRAM bandwidth in bytes per cycle; 0 means unbounded.
    pub dram_bw: u32,
    /// Corner name (`"unbounded"`, `"edge"`, …) — the label suffix and
    /// filter/CSV key.
    pub name: &'static str,
}

impl Default for MemorySpec {
    fn default() -> Self {
        Self::unbounded()
    }
}

impl MemorySpec {
    /// The default corner: no memory-hierarchy limits. Reproduces the
    /// pre-memory evaluator byte-identically.
    pub fn unbounded() -> Self {
        Self {
            sram_kib: 0,
            sram_bw: 0,
            dram_bw: 0,
            name: "unbounded",
        }
    }

    /// A banked-SRAM corner: `banks` skewed banks at [`SRAM_PORT_BYTES`]
    /// each (the §IV-C geometry), over a `dram_bw` bytes/cycle external
    /// interface.
    pub fn banked(name: &'static str, banks: u32, sram_kib: u32, dram_bw: u32) -> Self {
        Self {
            sram_kib,
            sram_bw: banks * SRAM_PORT_BYTES,
            dram_bw,
            name,
        }
    }

    /// An edge-class corner: 16 banks (64 B/cycle), 256 KiB SRAM, 8
    /// B/cycle DRAM.
    pub fn edge() -> Self {
        Self::banked("edge", 16, 256, 8)
    }

    /// A mobile-class corner: 32 banks (128 B/cycle), 2 MiB SRAM, 16
    /// B/cycle DRAM.
    pub fn mobile() -> Self {
        Self::banked("mobile", 32, 2048, 16)
    }

    /// A datacenter-class corner: 64 banks (256 B/cycle), 24 MiB SRAM,
    /// 64 B/cycle DRAM.
    pub fn hbm() -> Self {
        Self::banked("hbm", 64, 24576, 64)
    }

    /// Whether this is the unlimited default (the identity projection).
    pub fn is_unbounded(&self) -> bool {
        self.sram_bw == 0 && self.dram_bw == 0 && self.sram_kib == 0
    }

    /// SRAM capacity in bytes; `None` when unbounded.
    pub fn sram_bytes(&self) -> Option<f64> {
        (self.sram_kib > 0).then(|| f64::from(self.sram_kib) * 1024.0)
    }
}

/// Which roofline ceiling bounds a layer's effective delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Bound {
    /// Compute cycles dominate (always the case under
    /// [`MemorySpec::unbounded`]).
    #[default]
    Compute,
    /// On-chip SRAM bandwidth dominates.
    Sram,
    /// External DRAM bandwidth dominates.
    Dram,
}

impl Bound {
    /// Stable lowercase label (`compute` / `sram` / `dram`) — the CSV,
    /// JSON and serve wire value.
    pub fn label(self) -> &'static str {
        match self {
            Bound::Compute => "compute",
            Bound::Sram => "sram",
            Bound::Dram => "dram",
        }
    }

    /// Parses a [`Bound::label`] back (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "compute" => Some(Bound::Compute),
            "sram" => Some(Bound::Sram),
            "dram" => Some(Bound::Dram),
            _ => None,
        }
    }
}

/// A synthesis corner: clock constraint + process node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Corner {
    /// Clock constraint in GHz.
    pub freq_ghz: f64,
    /// Process node costs are scaled to (the model is calibrated at
    /// SMIC 28 nm; other nodes use first-order scaling).
    pub node: ProcessNode,
    /// Display name of the node.
    pub node_name: &'static str,
}

impl Corner {
    /// SMIC 28 nm (the paper's node) at `freq_ghz`.
    pub fn smic28(freq_ghz: f64) -> Self {
        Self {
            freq_ghz,
            node: ProcessNode::SMIC28,
            node_name: "28nm",
        }
    }

    /// 16 nm FinFET at `freq_ghz` (first-order scaled).
    pub fn n16(freq_ghz: f64) -> Self {
        Self {
            freq_ghz,
            node: ProcessNode::N16,
            node_name: "16nm",
        }
    }

    /// Stable display label ("28nm@1.50GHz").
    pub fn label(&self) -> String {
        format!("{}@{:.2}GHz", self.node_name, self.freq_ghz)
    }
}

/// One fully-specified execution engine (a design point minus workload).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSpec {
    /// PE microarchitecture (Figure 9).
    pub style: PeStyle,
    /// Array organization (Table VII).
    pub kind: ArchKind,
    /// Multiplicand encoding (serial datapaths; dense multipliers carry
    /// their built-in Booth encoding).
    pub encoding: EncodingKind,
    /// Operand/accumulator precision the datapath is synthesized for
    /// ([`Precision::W8`] is the paper's configuration and the default;
    /// labels carry a `@W4`-style suffix for anything else).
    pub precision: Precision,
    /// Clock in GHz.
    pub freq_ghz: f64,
    /// Process node costs are scaled to.
    pub node: ProcessNode,
    /// Display name of the node.
    pub node_name: &'static str,
    /// Memory-hierarchy corner the roofline bounds delay against
    /// ([`MemorySpec::unbounded`] is the paper's configuration and the
    /// default; labels carry a `@edge`-style suffix for anything else).
    pub memory: MemorySpec,
}

impl EngineSpec {
    /// A dense engine (classic topology) at SMIC 28 nm, W8 precision.
    pub fn dense(style: PeStyle, arch: ClassicArch, freq_ghz: f64) -> Self {
        Self {
            style,
            kind: ArchKind::Dense(arch),
            encoding: EncodingKind::Mbe,
            precision: Precision::W8,
            freq_ghz,
            node: ProcessNode::SMIC28,
            node_name: "28nm",
            memory: MemorySpec::unbounded(),
        }
    }

    /// A serial (column-synchronous) engine at SMIC 28 nm, W8 precision.
    pub fn serial(style: PeStyle, encoding: EncodingKind, freq_ghz: f64) -> Self {
        Self {
            style,
            kind: ArchKind::Serial,
            encoding,
            precision: Precision::W8,
            freq_ghz,
            node: ProcessNode::SMIC28,
            node_name: "28nm",
            memory: MemorySpec::unbounded(),
        }
    }

    /// The same engine synthesized for a different operand precision.
    pub fn with_precision(self, precision: Precision) -> Self {
        Self { precision, ..self }
    }

    /// The same engine under a different memory-hierarchy corner.
    pub fn with_memory(self, memory: MemorySpec) -> Self {
        Self { memory, ..self }
    }

    /// The Table VII roster (see [`crate::roster`] for the named registry).
    pub fn paper_roster() -> Vec<EngineSpec> {
        crate::roster::paper_roster()
    }

    /// The engine's synthesis corner.
    pub fn corner(&self) -> Corner {
        Corner {
            freq_ghz: self.freq_ghz,
            node: self.node,
            node_name: self.node_name,
        }
    }

    /// The same architecture at a different corner.
    pub fn at_corner(&self, corner: Corner) -> Self {
        Self {
            freq_ghz: corner.freq_ghz,
            node: corner.node,
            node_name: corner.node_name,
            ..self.clone()
        }
    }

    /// Architecture half of the label ("OPT1(TPU)", "OPT3\[EN-T\]").
    pub fn arch_label(&self) -> String {
        match self.kind {
            ArchKind::Dense(arch) => format!("{}({})", self.style.name(), classic_name(arch)),
            ArchKind::Serial => format!("{}[{}]", self.style.name(), self.encoding),
        }
    }

    /// Full engine label, stable across runs — the seed/filter/CSV key
    /// ("OPT4E\[EN-T\]/28nm\@2.00GHz"). Non-default precisions append a
    /// `@W4`-style suffix ("OPT3\[EN-T\]/28nm\@2.00GHz\@W4") and finite
    /// memory corners a `@edge`-style one after it, both parsed back by
    /// [`crate::roster::find`]; the default W8/unbounded stays suffix-free
    /// so every historical label (and seed derived from it) is unchanged.
    pub fn label(&self) -> String {
        let mut label = format!(
            "{}/{}@{:.2}GHz",
            self.arch_label(),
            self.node_name,
            self.freq_ghz
        );
        if !self.precision.is_default() {
            label.push('@');
            label.push_str(&self.precision.label());
        }
        if !self.memory.is_unbounded() {
            label.push('@');
            label.push_str(self.memory.name);
        }
        label
    }

    /// PE instances at the paper's array sizes (10×10×10 Cube, else 32×32).
    pub fn pe_instances(&self) -> usize {
        match self.kind {
            ArchKind::Dense(ClassicArch::Ascend) => 1000,
            _ => 1024,
        }
    }

    /// The equivalent `tpe-core` architecture model.
    pub fn arch_model(&self) -> ArchModel {
        ArchModel {
            name: self.arch_label(),
            style: self.style,
            kind: self.kind,
            pe_instances: self.pe_instances(),
            freq_ghz: self.freq_ghz,
        }
    }

    /// Prices the engine through the process-wide cache: PE synthesis at
    /// the clock (memoized on [`crate::cache::PeKey`]), node scaling,
    /// array support logic. `None` when the PE cannot close timing.
    pub fn price(&self) -> Option<EnginePrice> {
        crate::eval::Evaluator::global().price(self)
    }
}

/// Display name of a classic dense topology.
pub fn classic_name(arch: ClassicArch) -> &'static str {
    match arch {
        ClassicArch::Tpu => "TPU",
        ClassicArch::Ascend => "Ascend",
        ClassicArch::Trapezoid => "Trapezoid",
        ClassicArch::FlexFlow => "FlexFlow",
    }
}

/// A priced engine: everything the scheduler needs to turn cycles into
/// delay, energy and efficiency figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnginePrice {
    /// Total array area (µm², node-scaled, support + overhead included).
    pub area_um2: f64,
    /// Energy per PE-instance-cycle while busy (fJ, [`tpe_cost::power::PE_BUSY`]).
    pub e_active_fj: f64,
    /// Energy per PE-instance-cycle while clock-gated (fJ,
    /// [`tpe_cost::power::PE_IDLE`]).
    pub e_idle_fj: f64,
    /// PE (or PE-group) instances in the array.
    pub instances: f64,
    /// Total MAC-equivalent lanes (instances × lanes per instance).
    pub lanes_total: f64,
    /// Peak throughput (TOPS; serial engines divide by effective NumPPs).
    pub peak_tops: f64,
}

impl EnginePrice {
    /// Assembles the array-level price from a cached per-PE record.
    ///
    /// This is the single place PE-level synthesis becomes array-level
    /// cost: support-logic area, the 2% interconnect overhead and the
    /// peak-throughput accounting live here and nowhere else.
    pub fn from_record(spec: &EngineSpec, record: &PeRecord, support_um2: f64) -> Self {
        let instances = spec.pe_instances() as f64;
        let area_um2 = (record.area_um2 * instances + support_um2) * (1.0 + ARRAY_OVERHEAD_FRAC);
        let lanes_total = instances * f64::from(record.lanes);
        let freq = spec.freq_ghz;
        let raw_tops = lanes_total * 2.0 * freq * 1e9 / 1e12;
        let peak_tops = match spec.kind {
            ArchKind::Dense(_) => raw_tops,
            // Serial peak divides by the expected digits per operand at
            // the engine's multiplicand width — the precision axis's
            // linear serial cost law.
            ArchKind::Serial => {
                raw_tops
                    / effective_numpps_at(spec.encoding.encoder().as_ref(), spec.precision.a_bits)
            }
        };
        Self {
            area_um2,
            e_active_fj: record.active_power_uw / freq,
            e_idle_fj: record.idle_power_uw / freq,
            instances,
            lanes_total,
            peak_tops,
        }
    }

    /// Table VII's array power convention: every PE toggles at full
    /// datapath activity (dense sweeps keep all PEs busy; serial designs
    /// only skip *zero* digits), plus the interconnect overhead share.
    pub fn table7_power_w(&self, freq_ghz: f64) -> f64 {
        self.e_active_fj * freq_ghz * self.instances * 1e-6 * (1.0 + ARRAY_OVERHEAD_FRAC)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_covers_all_topologies_and_serial_styles() {
        let roster = EngineSpec::paper_roster();
        for arch in ClassicArch::ALL {
            assert!(
                roster.iter().any(|e| e.kind == ArchKind::Dense(arch)),
                "{arch:?} missing from roster"
            );
        }
        for style in [PeStyle::Opt3, PeStyle::Opt4C, PeStyle::Opt4E] {
            assert!(roster.iter().any(|e| e.style == style));
        }
        let mut labels: Vec<String> = roster.iter().map(EngineSpec::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), roster.len(), "duplicate engine labels");
    }

    #[test]
    fn every_roster_engine_prices_at_its_paper_clock() {
        for engine in EngineSpec::paper_roster() {
            let price = engine
                .price()
                .unwrap_or_else(|| panic!("{} fails timing", engine.label()));
            assert!(price.area_um2 > 0.0 && price.area_um2.is_finite());
            assert!(price.e_active_fj > price.e_idle_fj);
            assert!(price.peak_tops > 0.0);
        }
    }

    #[test]
    fn mac_engine_walls_beyond_1p5_ghz() {
        let mut e = EngineSpec::dense(PeStyle::TraditionalMac, ClassicArch::Tpu, 2.0);
        assert!(e.price().is_none());
        e.freq_ghz = 1.0;
        assert!(e.price().is_some());
    }

    #[test]
    fn serial_peak_tops_divides_by_effective_numpps() {
        let opt3 = EngineSpec::serial(PeStyle::Opt3, EncodingKind::EnT, 2.0)
            .price()
            .unwrap();
        // 1024 lanes × 2 ops × 2 GHz = 4.096 raw TOPS; EN-T's ~2.27
        // effective NumPPs lands near Table VII's 1.80 TOPS.
        assert!((1.6..2.1).contains(&opt3.peak_tops), "{}", opt3.peak_tops);
    }

    #[test]
    fn corner_round_trips_through_the_spec() {
        let spec = EngineSpec::serial(PeStyle::Opt4E, EncodingKind::EnT, 2.0);
        let corner = spec.corner();
        assert_eq!(corner.label(), "28nm@2.00GHz");
        let moved = spec.at_corner(Corner::n16(1.5));
        assert_eq!(moved.label(), "OPT4E[EN-T]/16nm@1.50GHz");
        assert_eq!(moved.arch_label(), spec.arch_label());
    }

    /// The default memory corner is the identity projection: suffix-free
    /// labels, compute-bound roofline, every historical seed unchanged.
    #[test]
    fn unbounded_memory_keeps_labels_suffix_free() {
        let spec = EngineSpec::serial(PeStyle::Opt4E, EncodingKind::EnT, 2.0);
        assert!(spec.memory.is_unbounded());
        assert_eq!(spec.label(), "OPT4E[EN-T]/28nm@2.00GHz");
        let bounded = spec.clone().with_memory(MemorySpec::edge());
        assert_eq!(bounded.label(), "OPT4E[EN-T]/28nm@2.00GHz@edge");
        let both = bounded.with_precision(tpe_arith::Precision::W4);
        assert_eq!(both.label(), "OPT4E[EN-T]/28nm@2.00GHz@W4@edge");
    }

    /// §IV-C promotion: every finite SRAM bandwidth corner is `banks ×
    /// SRAM_PORT_BYTES` over the skewed bank layout of
    /// `tpe_sim::memory::SkewedBankLayout` — the bank count recovered from
    /// the corner drives a conflict-free aligned access pattern.
    #[test]
    fn memory_corners_tie_to_bank_geometry() {
        for (mem, banks) in [
            (MemorySpec::edge(), 16u32),
            (MemorySpec::mobile(), 32),
            (MemorySpec::hbm(), 64),
        ] {
            assert_eq!(mem.sram_bw, banks * SRAM_PORT_BYTES, "{}", mem.name);
            let layout =
                tpe_sim::memory::SkewedBankLayout::new((mem.sram_bw / SRAM_PORT_BYTES) as usize);
            assert_eq!(layout.banks() as u32, banks, "{}", mem.name);
            let accesses: Vec<(usize, usize)> = (0..layout.banks()).map(|c| (c, 7)).collect();
            assert_eq!(layout.conflicts(&accesses), 0, "{}", mem.name);
        }
    }
}
