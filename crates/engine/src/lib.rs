#![warn(missing_docs)]

//! # tpe-engine
//!
//! The canonical evaluation stack for the bit-weight TPE workspace.
//!
//! The paper's comparisons (Tables I–VII, Figures 9–14) all reduce to
//! pricing one (engine × workload) pair. Before this crate existed the
//! workspace computed that in three independently-maintained paths —
//! `tpe-dse`'s point evaluator, `tpe-pipeline`'s engine pricing, and the
//! hand-rolled figure/table experiments in `tpe-bench` — each with its own
//! sample caps, engine roster and per-run cache. `tpe-engine` is the single
//! implementation they now all consume:
//!
//! ```text
//!            ┌───────────────────────────────────────────────┐
//!            │                 tpe-engine                    │
//!  queries   │  spec ── EngineSpec / EnginePrice / Corner    │
//!  ───────►  │  roster ─ Table VII registry + label lookup   │
//!  dse       │  caps ─── SerialSampleCaps profile table      │
//!  pipeline  │  eval ─── Evaluator: synthesis → node scaling │
//!  bench     │           → array support → cycle models      │
//!  serve     │  cache ── process-wide sharded memo cache     │
//!            │  serve ── NDJSON batch query server           │
//!            └───────────────────────────────────────────────┘
//! ```
//!
//! * [`spec`] — [`EngineSpec`]: the architecture half of a design point
//!   (PE style × array × encoding × operand [`Precision`] × corner ×
//!   [`MemorySpec`] memory corner), its stable label grammar (`@W4` /
//!   `@edge`-style suffixes), and [`EnginePrice`], the array-level cost
//!   assembly.
//! * [`roster`] — the named Table VII registry (12 engines), the default
//!   sweep corners, and label → spec lookup for serve queries.
//! * [`caps`] — the [`caps::SampleProfile`] table unifying every
//!   serial-sampling budget the workspace uses.
//! * [`cache`] — [`EngineCache`]: the process-wide concurrent memo cache,
//!   sharded `RwLock` maps keyed on [`cache::PeKey`] (synthesis),
//!   [`cache::CycleKey`] (sampled workload cycles) and [`ModelKey`]
//!   (whole-model reports, so repeated `model` queries are one lookup).
//! * [`snapshot`] — versioned binary persistence of the cache's four
//!   maps (atomic save, checksummed strict-reject load), so warm state
//!   survives restarts and seeds fresh replicas.
//! * [`eval`] — [`Evaluator`]: one (engine, workload, seed) →
//!   [`eval::Metrics`] / [`report::ModelReport`], bit-identical no matter
//!   which consumer asks.
//! * [`schedule`] / [`report`] — layer tiling onto array geometries and
//!   the per-layer/end-to-end report schema.
//! * [`serve`] — the `repro serve` protocol: a std-only TCP/NDJSON batch
//!   query server over the global cache, instrumented end to end with
//!   `tpe-obs` metrics ([`serve::ServeObs`]) and exposing them through
//!   its `metrics` op (JSON snapshot or Prometheus text exposition).
//!
//! ## Quickstart
//!
//! ```
//! use tpe_engine::{Evaluator, SweepWorkload};
//! use tpe_workloads::LayerShape;
//!
//! let engine = tpe_engine::roster::find("OPT4E[EN-T]/28nm@2.00GHz").unwrap();
//! let workload = SweepWorkload::Layer(LayerShape::new("fc1", 1, 3072, 768, 1));
//! let metrics = Evaluator::global().metrics(&engine, &workload, 42).unwrap();
//! assert!(metrics.throughput_gops > 0.0);
//! // Same question, same answer — served from the global cache.
//! let again = Evaluator::global().metrics(&engine, &workload, 42).unwrap();
//! assert_eq!(metrics, again);
//! ```

pub mod cache;
pub mod caps;
pub mod eval;
pub mod report;
pub mod roster;
pub mod schedule;
pub mod serve;
pub mod snapshot;
pub mod spec;
pub mod workload;

pub use cache::{CacheContents, CacheStats, EngineCache, ModelKey, ModelRecord};
pub use caps::{CycleModel, SampleProfile, SerialSampleCaps};
pub use eval::{Evaluator, Metrics};
pub use report::{LayerReport, ModelReport};
pub use schedule::{
    dense_model_cycles, dense_tiles, evaluate_model, schedule_layer, serial_model_cycles,
    LayerSchedule, MODEL_SAMPLE_CAPS,
};
pub use schedule::{layer_traffic, LayerTraffic};
pub use snapshot::{SnapshotInfo, SNAPSHOT_VERSION};
pub use spec::{classic_name, Bound, Corner, EnginePrice, EngineSpec, MemorySpec};
pub use tpe_arith::Precision;
pub use workload::SweepWorkload;

/// FNV-1a over a label: the stable seed component used everywhere the
/// workspace derives per-work-item RNG streams. Independent of sweep order
/// and thread assignment, which is what makes parallel runs byte-identical
/// to serial ones (`tpe-dse` re-exports this as `label_hash`).
pub fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_is_stable_and_label_sensitive() {
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("ResNet18/OPT4E"), fnv1a("ResNet18/OPT4E"));
        assert_ne!(fnv1a("ResNet18/OPT4E"), fnv1a("ResNet18/OPT3"));
    }
}
