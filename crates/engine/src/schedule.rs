//! Layer → array scheduling: img2col-lowered GEMMs tiled onto an engine's
//! geometry, with cycle, utilization and tiling accounting.
//!
//! The model database (`tpe_workloads::models`) stores every layer already
//! lowered to its GEMM via img2col (`ConvShape::gemm_dims`, §IV-C's
//! K = C·k² reduction). Scheduling then depends only on the engine family:
//!
//! * **Dense** — the layer is cut into output/reduction tiles matching the
//!   array grid (32×32 planes, the 10×10×10 cube) and cycles come from the
//!   simulator-validated closed-form models in [`tpe_sim::array`]. Dense
//!   arrays clock every PE every cycle, so the busy fraction is 1 and
//!   utilization is useful MACs over lane-cycles.
//! * **Serial** — the layer maps multiplicand rows across the MP columns
//!   and cycles are sampled from the shared encoder-parameterized
//!   [`sample_serial_cycles`] model (Eq. 7's `sync` barrier: the slowest
//!   column bounds each round), memoized in the process-wide
//!   [`EngineCache`] on the exact (geometry, encoding, shape, seed, caps)
//!   key. Utilization is the sampled busy fraction.
//!
//! Per-layer RNG seeds are derived from [`fnv1a`](crate::fnv1a()) over the
//! layer's index and name, so whole-model results never depend on
//! evaluation order — the property the grid executor's byte-identical
//! determinism rests on.
//!
//! [`sample_serial_cycles`]: tpe_core::arch::workload::sample_serial_cycles

use std::collections::HashMap;

use tpe_core::arch::workload::{analytic_serial_cycles, sample_serial_cycles, SerialCycleStats};
use tpe_core::arch::ArchKind;
use tpe_sim::array::ClassicArch;
use tpe_sim::BitsliceConfig;
use tpe_workloads::{LayerShape, NetworkModel};

use crate::cache::{CycleKey, EngineCache, ModelRecord, SerialLayerRecord};
use crate::caps::{CycleModel, SampleProfile, SerialSampleCaps};
use crate::report::{LayerReport, ModelReport};
use crate::spec::{Bound, EnginePrice, EngineSpec, MemorySpec};

/// Sampling caps for whole-model serial evaluation
/// ([`SampleProfile::Model`]; see the profile table for the rationale).
pub const MODEL_SAMPLE_CAPS: SerialSampleCaps = SampleProfile::Model.caps();

/// Number of img2col tiles a dense array cuts one GEMM layer into — the
/// scheduling granularity of the dense pipelines (weight tiles for the
/// weight-stationary systolic array, output blocks for the broadcast
/// matrix, unit batches for the adder tree, 3-D blocks for the cube).
pub fn dense_tiles(arch: ClassicArch, layer: &LayerShape) -> u64 {
    let (m, n, k) = (layer.m, layer.n, layer.k);
    let per_repeat = match arch {
        // Weight-stationary: one 32×32 weight tile per (k, n) block.
        ClassicArch::Tpu => (k.div_ceil(32) * n.div_ceil(32)) as u64,
        // 10×10×10 cube: 3-D blocks over all of m, n, k.
        ClassicArch::Ascend => (m.div_ceil(10) * n.div_ceil(10) * k.div_ceil(10)) as u64,
        // 32 dot-product units × 32-lane reduction chunks.
        ClassicArch::Trapezoid => ((m * n * k.div_ceil(32)) as u64).div_ceil(32),
        // Output-stationary 32×32 blocks, K streamed.
        ClassicArch::FlexFlow => (m.div_ceil(32) * n.div_ceil(32)) as u64,
    };
    per_repeat * layer.repeats as u64
}

/// The output-tile width an array sweeps the N dimension with — how many
/// weight-tile column passes the streamed activations pay for in the
/// traffic model (32-wide planes everywhere except the 10-wide cube).
fn traffic_tile_n(engine: &EngineSpec) -> usize {
    match engine.kind {
        ArchKind::Dense(ClassicArch::Ascend) => 10,
        _ => 32,
    }
}

/// Per-layer memory traffic of one img2col-lowered GEMM under the tile
/// reuse discipline of the dense schedules (and the serial arrays' row
/// mapping, which streams the same operands):
///
/// * **weights** are resident per tile pass — each of the `k×n` weight
///   elements is fetched once per repeat;
/// * **activations** are streamed — the `m×k` operand panel is re-read
///   once per output-tile column pass (`⌈n / tile_n⌉` passes);
/// * **outputs** are written once.
///
/// Byte widths scale with the layer's effective precision
/// ([`layer_a_bits`]), which is how the precision axis expresses the
/// T-MAC observation that narrower operands shrink bytes moved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerTraffic {
    /// Weight bytes fetched (resident per tile pass: fetched once).
    pub weight_bytes: f64,
    /// Activation bytes streamed (once per output-tile column pass).
    pub act_bytes: f64,
    /// Output bytes written back.
    pub out_bytes: f64,
    /// Working-set footprint: every distinct operand/output byte once.
    pub footprint_bytes: f64,
}

impl LayerTraffic {
    /// Total bytes crossing the on-chip memory boundary.
    pub fn total_bytes(&self) -> f64 {
        self.weight_bytes + self.act_bytes + self.out_bytes
    }

    /// Bytes crossing the DRAM boundary: the working-set footprint when
    /// it fits in SRAM (each distinct byte fetched once, reuse on-chip),
    /// the full streamed traffic when it spills.
    pub fn dram_bytes(&self, mem: &MemorySpec) -> f64 {
        match mem.sram_bytes() {
            Some(cap) if self.footprint_bytes > cap => self.total_bytes(),
            _ => self.footprint_bytes,
        }
    }

    /// Arithmetic intensity: ops per byte moved (2 ops per MAC).
    pub fn intensity(&self, macs: u64) -> f64 {
        let bytes = self.total_bytes();
        if bytes > 0.0 {
            2.0 * macs as f64 / bytes
        } else {
            0.0
        }
    }

    /// Roofline-bounded effective cycles and the binding resource:
    /// `max(compute, sram traffic / sram bw, dram traffic / dram bw)`.
    /// The `Unbounded` corner returns `compute_cycles` untouched — the
    /// golden-projection identity every pre-refactor snapshot rests on.
    pub fn roofline(&self, mem: &MemorySpec, compute_cycles: f64) -> (f64, Bound) {
        if mem.is_unbounded() {
            return (compute_cycles, Bound::Compute);
        }
        let sram_cycles = if mem.sram_bw > 0 {
            self.total_bytes() / f64::from(mem.sram_bw)
        } else {
            0.0
        };
        let dram_cycles = if mem.dram_bw > 0 {
            self.dram_bytes(mem) / f64::from(mem.dram_bw)
        } else {
            0.0
        };
        let cycles = compute_cycles.max(sram_cycles).max(dram_cycles);
        let bound = if cycles <= compute_cycles {
            Bound::Compute
        } else if dram_cycles >= sram_cycles {
            Bound::Dram
        } else {
            Bound::Sram
        };
        (cycles, bound)
    }
}

/// Computes the memory traffic of one layer on one engine (see
/// [`LayerTraffic`] for the reuse model). Pure arithmetic over the GEMM
/// dims — no cache interaction, no sampling.
pub fn layer_traffic(engine: &EngineSpec, layer: &LayerShape) -> LayerTraffic {
    let bpe = f64::from(layer_a_bits(engine, layer)) / 8.0;
    let repeats = layer.repeats as f64;
    let (weights, acts, outs) = layer.operand_elems();
    let passes = layer.n.div_ceil(traffic_tile_n(engine)) as f64;
    LayerTraffic {
        weight_bytes: weights as f64 * bpe * repeats,
        act_bytes: acts as f64 * bpe * passes * repeats,
        out_bytes: outs as f64 * bpe * repeats,
        footprint_bytes: (weights + acts + outs) as f64 * bpe * repeats,
    }
}

/// One layer scheduled onto one engine: cycles, busy fraction, tiles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerSchedule {
    /// Array cycles for the full layer (all repeats).
    pub cycles: f64,
    /// Fraction of PE-cycles doing useful work (1.0 for dense arrays,
    /// which clock every PE every cycle).
    pub busy_frac: f64,
    /// Scheduling granularity: dense img2col tiles or serial sync rounds.
    pub tiles: f64,
}

/// The encoded-multiplicand width `layer` streams at on `spec`: the
/// layer's precision override when present (mixed-precision schedules),
/// the engine's synthesized precision otherwise.
pub fn layer_a_bits(spec: &EngineSpec, layer: &LayerShape) -> u32 {
    layer.precision.map_or(spec.precision.a_bits, |p| p.a_bits)
}

/// Rescales caller caps from the engine's operand width to the layer's
/// effective width: callers budget operands for the *engine* precision
/// ([`SampleProfile::caps_for`]), but a mixed-precision layer override
/// streams digits at its own width — so the operand budget is corrected
/// by `engine_a / layer_a` to keep the sampled cycle mass (and hence
/// estimate variance) at the profile's intended level. No override, no
/// change.
fn caps_for_layer(
    spec: &EngineSpec,
    layer: &LayerShape,
    caps: SerialSampleCaps,
) -> SerialSampleCaps {
    let (engine_a, layer_a) = (spec.precision.a_bits, layer_a_bits(spec, layer));
    if engine_a == layer_a {
        return caps;
    }
    SerialSampleCaps {
        max_operands: (caps.max_operands * engine_a as usize / layer_a as usize).max(1_000),
        ..caps
    }
}

/// The serial-layer outcome for `spec`, through `cache`.
///
/// This is the single entry point to the statistical sync model: the dse
/// evaluator, the model scheduler and the figure experiments all draw
/// from here, so one (engine, layer, seed, caps) evaluation runs at
/// most once per process. Digit statistics are drawn at
/// [`layer_a_bits`] — the precision axis's hook into the cycle model —
/// and the operand budget is width-corrected per layer
/// (`caps_for_layer`); the cache keys on the corrected caps, i.e. on
/// what the backend actually ran with.
///
/// `caps.model` selects the backend: the Monte-Carlo sampler (the
/// original path and test oracle, timed under `eval_serial_sample_ns`) or
/// the closed-form analytic evaluation (seed-independent, timed under
/// `eval_serial_analytic_ns`). The mode is part of the [`CycleKey`], so
/// both kinds of record coexist in one cache without cross-contamination.
pub fn cached_serial_cycles(
    cache: &EngineCache,
    spec: &EngineSpec,
    layer: &LayerShape,
    seed: u64,
    caps: SerialSampleCaps,
) -> SerialLayerRecord {
    let caps = caps_for_layer(spec, layer, caps);
    let key = CycleKey::of(spec, layer, seed, caps);
    cache.serial_record(key, || {
        let cfg = serial_config(spec);
        let encoder = spec.encoding.encoder();
        let a_bits = layer_a_bits(spec, layer);
        let stats = match caps.model {
            CycleModel::Sampled => {
                let _span = crate::eval::eval_obs().serial_sample_ns.span();
                sample_serial_cycles(&cfg, encoder.as_ref(), a_bits, layer, seed, caps)
            }
            CycleModel::Analytic => {
                let _span = crate::eval::eval_obs().serial_analytic_ns.span();
                analytic_serial_cycles(&cfg, encoder.as_ref(), a_bits, layer)
            }
        };
        record_of(&stats)
    })
}

/// Collapses per-column stats into the memoized record (bit-identically
/// to the original `SerialCycleStats` expressions).
fn record_of(stats: &SerialCycleStats) -> SerialLayerRecord {
    // One pass over the busy vector. Bit-identical to the three separate
    // passes it replaces: each accumulator applies the same operation to
    // the same elements in the same order (`Sum for f64` is a fold from
    // 0.0 over `+`).
    let (busy_sum, busy_min, busy_max) = stats
        .busy
        .iter()
        .fold((0.0_f64, f64::INFINITY, 0.0_f64), |(sum, lo, hi), &b| {
            (sum + b, lo.min(b), hi.max(b))
        });
    SerialLayerRecord {
        cycles: stats.cycles,
        busy_sum,
        busy_min,
        busy_max,
        rounds: stats.rounds,
        columns: stats.busy.len() as u32,
    }
}

/// Schedules one img2col-lowered layer onto `engine`, through `cache`.
pub fn schedule_layer_with(
    cache: &EngineCache,
    engine: &EngineSpec,
    layer: &LayerShape,
    seed: u64,
    caps: SerialSampleCaps,
) -> LayerSchedule {
    match engine.kind {
        ArchKind::Dense(arch) => {
            let sim = arch.at_paper_config();
            let cycles =
                sim.estimate_cycles(layer.m, layer.n, layer.k) as f64 * layer.repeats as f64;
            LayerSchedule {
                cycles,
                busy_frac: 1.0,
                tiles: dense_tiles(arch, layer) as f64,
            }
        }
        ArchKind::Serial => {
            let rec = cached_serial_cycles(cache, engine, layer, seed, caps);
            LayerSchedule {
                cycles: rec.cycles,
                busy_frac: rec.utilization(),
                tiles: rec.rounds,
            }
        }
    }
}

/// [`schedule_layer_with`] against the process-wide global cache.
pub fn schedule_layer(
    engine: &EngineSpec,
    layer: &LayerShape,
    seed: u64,
    caps: SerialSampleCaps,
) -> LayerSchedule {
    schedule_layer_with(EngineCache::global(), engine, layer, seed, caps)
}

/// The engine's bit-slice configuration with its encoding swapped in.
///
/// # Panics
///
/// Panics if the engine is dense.
pub fn serial_config(engine: &EngineSpec) -> BitsliceConfig {
    let mut cfg = engine.arch_model().bitslice_config();
    cfg.encoding = engine.encoding;
    cfg
}

/// Stable per-layer seed: mixes the caller's seed with the layer's index
/// and name so results are independent of evaluation order.
///
/// Streams FNV-1a over the exact bytes `format!("{index}/{name}")` would
/// produce — decimal digits of the index, `/`, the name — without the
/// heap allocation. This sits on the innermost model-walk path (once per
/// layer per walk), and the golden CSVs pin the derived sampled seeds, so
/// byte-for-byte equivalence with the `format!` form is load-bearing
/// (tested below).
fn layer_seed(seed: u64, index: usize, layer: &LayerShape) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut step = |b: u8| h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    // Decimal digits of `index`, most significant first (20 covers
    // u64::MAX; usize is never wider here).
    let mut digits = [0u8; 20];
    let mut rest = index;
    let mut len = 0;
    loop {
        digits[len] = b'0' + (rest % 10) as u8;
        len += 1;
        rest /= 10;
        if rest == 0 {
            break;
        }
    }
    for &d in digits[..len].iter().rev() {
        step(d);
    }
    step(b'/');
    for b in layer.name.bytes() {
        step(b);
    }
    seed ^ h
}

/// Total cycles of a whole model on a dense topology (closed-form; no
/// sampling, hence no seed).
pub fn dense_model_cycles(arch: ClassicArch, net: &NetworkModel) -> f64 {
    let sim = arch.at_paper_config();
    net.layers
        .iter()
        .map(|l| sim.estimate_cycles(l.m, l.n, l.k) as f64 * l.repeats as f64)
        .sum()
}

/// Total cycles and aggregate busy fraction of a whole model on a serial
/// array: every layer goes through the shared sampled sync model with its
/// own order-independent seed, and busy cycles are pooled across layers
/// (the delay-weighted utilization).
pub fn serial_model_cycles(
    cache: &EngineCache,
    spec: &EngineSpec,
    net: &NetworkModel,
    seed: u64,
    caps: SerialSampleCaps,
) -> (f64, f64) {
    let mp = serial_config(spec).mp;
    let mut cycles = 0.0;
    let mut busy_sum = 0.0;
    for (i, layer) in net.layers.iter().enumerate() {
        let rec = cached_serial_cycles(cache, spec, layer, layer_seed(seed, i, layer), caps);
        busy_sum += rec.busy_sum;
        cycles += rec.cycles;
    }
    // Guard the degenerate empty network (0 cycles would divide to NaN).
    let busy_frac = if cycles > 0.0 {
        busy_sum / (cycles * mp as f64)
    } else {
        0.0
    };
    (cycles, busy_frac)
}

/// Costs one scheduled layer into its report row. Shared between the
/// naive per-layer walk ([`evaluate_model_with`]) and the dedup'd model
/// assembly (`assemble_model_record`) so the two paths stay
/// bit-identical by construction.
fn layer_row(
    engine: &EngineSpec,
    price: &EnginePrice,
    layer: &LayerShape,
    s: LayerSchedule,
) -> LayerReport {
    let macs = layer.macs();
    let traffic = {
        let _span = crate::eval::eval_obs().traffic_ns.span();
        layer_traffic(engine, layer)
    };
    let bytes_moved = traffic.total_bytes();
    let intensity_ops_per_byte = traffic.intensity(macs);
    let (eff_cycles, bound) = traffic.roofline(&engine.memory, s.cycles);
    crate::eval::eval_obs().bound_counter(bound).inc();
    let (cycles, delay_us, utilization, energy_uj) = if engine.memory.is_unbounded() {
        // The pre-memory arithmetic, expression for expression: the golden
        // CSVs pin these f64 bit patterns, so the unbounded corner must
        // not re-associate a single operation.
        let delay_us = s.cycles / (engine.freq_ghz * 1e3);
        let pe_cycles = s.cycles * price.instances;
        let energy_uj = (pe_cycles * s.busy_frac * price.e_active_fj
            + pe_cycles * (1.0 - s.busy_frac) * price.e_idle_fj)
            * 1e-9;
        let utilization = match engine.kind {
            ArchKind::Dense(_) => (macs as f64 / (s.cycles * price.lanes_total)).min(1.0),
            ArchKind::Serial => s.busy_frac,
        };
        (s.cycles, delay_us, utilization, energy_uj)
    } else {
        // Roofline-bounded: the array occupies `eff_cycles` wall-clock
        // cycles but only `s.cycles` of them compute — stall cycles burn
        // idle power, and utilization dilutes by the stall fraction.
        let delay_us = eff_cycles / (engine.freq_ghz * 1e3);
        let active = s.cycles * s.busy_frac;
        let energy_uj = (active * price.e_active_fj + (eff_cycles - active) * price.e_idle_fj)
            * price.instances
            * 1e-9;
        let utilization = match engine.kind {
            ArchKind::Dense(_) => (macs as f64 / (eff_cycles * price.lanes_total)).min(1.0),
            ArchKind::Serial => s.busy_frac * (s.cycles / eff_cycles),
        };
        (eff_cycles, delay_us, utilization, energy_uj)
    };
    LayerReport {
        name: layer.name.as_str().into(),
        macs,
        tiles: s.tiles,
        cycles,
        delay_us,
        utilization,
        energy_uj,
        bytes_moved,
        intensity_ops_per_byte,
        bound,
    }
}

/// Evaluates one whole model on one priced engine, through `cache`: every
/// layer scheduled, costed and aggregated into an end-to-end
/// [`ModelReport`].
///
/// This is the naive per-layer oracle — one schedule per layer, no shape
/// dedup. The cached model path (`assemble_model_record` behind
/// [`EngineCache::model_record`]) must stay bit-identical to it; the
/// equality is pinned by unit tests and a proptest across cycle models
/// and precisions.
pub fn evaluate_model_with(
    cache: &EngineCache,
    engine: &EngineSpec,
    price: &EnginePrice,
    net: &NetworkModel,
    seed: u64,
    caps: SerialSampleCaps,
) -> ModelReport {
    let _span = crate::eval::eval_obs().model_schedule_ns.span();
    let layers: Vec<LayerReport> = net
        .layers
        .iter()
        .enumerate()
        .map(|(i, layer)| {
            let s = schedule_layer_with(cache, engine, layer, layer_seed(seed, i, layer), caps);
            layer_row(engine, price, layer, s)
        })
        .collect();
    ModelReport::aggregate(net.name.as_str(), engine, price, layers)
}

/// The model cache's miss path: one whole-model walk, restructured for
/// speed but bit-identical to [`evaluate_model_with`]:
///
/// * **Hoisting** — the dense simulator (`at_paper_config`), the serial
///   [`BitsliceConfig`] and the encoder are built once per walk instead
///   of once per layer.
/// * **Shape dedup** — layers are grouped by their full cycle identity
///   (the [`CycleKey`] for serial engines — shape, effective `a_bits`,
///   corrected caps *and* per-layer seed — or `(m, n, k, repeats)` for
///   dense ones) and each group is scheduled once; rows are then
///   materialized per occurrence in original layer order. Analytic mode
///   canonicalizes seeds to zero, so repeated shapes collapse across the
///   whole network; sampled mode dedups only layers whose derived seeds
///   coincide, exactly as the naive loop would have sampled them.
/// * **Pooled busy cycles** — `busy_sum` accumulates per occurrence in
///   layer order, so the dse model-point busy fraction
///   (`busy_sum / (cycles × MP)`, see [`serial_model_cycles`]) is the
///   same f64 addition sequence as the naive loop.
pub(crate) fn assemble_model_record(
    cache: &EngineCache,
    spec: &EngineSpec,
    price: &EnginePrice,
    net: &NetworkModel,
    seed: u64,
    caps: SerialSampleCaps,
) -> ModelRecord {
    let mut rows = Vec::with_capacity(net.layers.len());
    let mut busy_sum = 0.0;
    match spec.kind {
        ArchKind::Dense(arch) => {
            let sim = arch.at_paper_config();
            let mut cycles_of: HashMap<(usize, usize, usize, usize), f64> = HashMap::new();
            for layer in &net.layers {
                let cycles = *cycles_of
                    .entry((layer.m, layer.n, layer.k, layer.repeats))
                    .or_insert_with(|| {
                        sim.estimate_cycles(layer.m, layer.n, layer.k) as f64 * layer.repeats as f64
                    });
                let s = LayerSchedule {
                    cycles,
                    busy_frac: 1.0,
                    tiles: dense_tiles(arch, layer) as f64,
                };
                rows.push(layer_row(spec, price, layer, s));
            }
        }
        ArchKind::Serial => {
            let cfg = serial_config(spec);
            let encoder = spec.encoding.encoder();
            let mut seen: HashMap<CycleKey, SerialLayerRecord> = HashMap::new();
            for (i, layer) in net.layers.iter().enumerate() {
                let lcaps = caps_for_layer(spec, layer, caps);
                let lseed = layer_seed(seed, i, layer);
                let key = CycleKey::of(spec, layer, lseed, lcaps);
                let rec = match seen.get(&key) {
                    Some(rec) => *rec,
                    None => {
                        let rec = cache.serial_record(key, || {
                            let a_bits = layer_a_bits(spec, layer);
                            let stats = match lcaps.model {
                                CycleModel::Sampled => {
                                    let _span = crate::eval::eval_obs().serial_sample_ns.span();
                                    sample_serial_cycles(
                                        &cfg,
                                        encoder.as_ref(),
                                        a_bits,
                                        layer,
                                        lseed,
                                        lcaps,
                                    )
                                }
                                CycleModel::Analytic => {
                                    let _span = crate::eval::eval_obs().serial_analytic_ns.span();
                                    analytic_serial_cycles(&cfg, encoder.as_ref(), a_bits, layer)
                                }
                            };
                            record_of(&stats)
                        });
                        seen.insert(key, rec);
                        rec
                    }
                };
                busy_sum += rec.busy_sum;
                let s = LayerSchedule {
                    cycles: rec.cycles,
                    busy_frac: rec.utilization(),
                    tiles: rec.rounds,
                };
                rows.push(layer_row(spec, price, layer, s));
            }
        }
    }
    let report = ModelReport::aggregate(net.name.as_str(), spec, price, rows);
    ModelRecord::of(&report, busy_sum)
}

/// [`evaluate_model_with`] against the process-wide global cache.
pub fn evaluate_model(
    engine: &EngineSpec,
    price: &EnginePrice,
    net: &NetworkModel,
    seed: u64,
    caps: SerialSampleCaps,
) -> ModelReport {
    evaluate_model_with(EngineCache::global(), engine, price, net, seed, caps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fnv1a;
    use tpe_arith::encode::EncodingKind;
    use tpe_core::arch::PeStyle;
    use tpe_workloads::img2col::ConvShape;
    use tpe_workloads::models;

    fn opt4e() -> EngineSpec {
        EngineSpec::serial(PeStyle::Opt4E, EncodingKind::EnT, 2.0)
    }

    #[test]
    fn dense_tiles_cover_every_topology() {
        let layer = LayerShape::new("t", 64, 56 * 56, 576, 1);
        for arch in ClassicArch::ALL {
            assert!(dense_tiles(arch, &layer) > 0, "{arch:?}");
        }
        // The §IV-C layer cuts into ⌈576/32⌉ × ⌈3136/32⌉ = 18 × 98 weight
        // tiles on the systolic array.
        assert_eq!(dense_tiles(ClassicArch::Tpu, &layer), 18 * 98);
        // Depthwise repeats multiply.
        let dw = LayerShape::new("dw", 1, 28 * 28, 9, 672);
        assert_eq!(
            dense_tiles(ClassicArch::FlexFlow, &dw),
            672 * 25,
            "1×784 output per channel = 25 blocks of 32"
        );
    }

    #[test]
    fn img2col_lowered_conv_schedules_like_its_gemm() {
        // The pipeline ingests pre-lowered layers: a conv fed through
        // img2col (§IV-C) and its explicit GEMM shape schedule identically.
        let conv = ConvShape::standard(64, 64, 56, 3, 1, 1);
        let lowered = LayerShape::from_conv("l1", &conv);
        assert_eq!((lowered.m, lowered.n, lowered.k), (64, 56 * 56, 576));
        let explicit = LayerShape::new("l1", 64, 56 * 56, 576, 1);
        let engine = EngineSpec::dense(PeStyle::TraditionalMac, ClassicArch::Tpu, 1.0);
        let a = schedule_layer(&engine, &lowered, 1, MODEL_SAMPLE_CAPS);
        let b = schedule_layer(&engine, &explicit, 1, MODEL_SAMPLE_CAPS);
        assert_eq!(a, b);
    }

    #[test]
    fn serial_schedule_matches_shared_sync_model() {
        let engine = opt4e();
        let layer = LayerShape::new("fc1", 1, 4 * 768, 768, 1);
        let s = schedule_layer(&engine, &layer, 7, MODEL_SAMPLE_CAPS);
        assert!(s.cycles > 0.0);
        assert!((0.0..=1.0).contains(&s.busy_frac));
        assert!(s.busy_frac > 0.9, "K=768 keeps columns busy (Fig. 11(A))");
        assert!(s.tiles >= 1.0);
    }

    #[test]
    fn model_cycles_sum_layer_cycles() {
        let net = models::resnet18();
        let engine = EngineSpec::dense(PeStyle::TraditionalMac, ClassicArch::Tpu, 1.0);
        let per_layer: f64 = net
            .layers
            .iter()
            .map(|l| schedule_layer(&engine, l, 0, MODEL_SAMPLE_CAPS).cycles)
            .sum();
        let whole = dense_model_cycles(ClassicArch::Tpu, &net);
        assert!((per_layer - whole).abs() < 1e-6 * whole.max(1.0));
    }

    #[test]
    fn serial_model_cycles_are_seed_deterministic_and_order_independent() {
        let engine = opt4e();
        let cache = EngineCache::new();
        let net = models::mobilenet_v3();
        let (c1, b1) = serial_model_cycles(&cache, &engine, &net, 9, MODEL_SAMPLE_CAPS);
        let (c2, b2) = serial_model_cycles(&cache, &engine, &net, 9, MODEL_SAMPLE_CAPS);
        assert_eq!(c1.to_bits(), c2.to_bits());
        assert_eq!(b1.to_bits(), b2.to_bits());
        let (c3, _) = serial_model_cycles(&cache, &engine, &net, 10, MODEL_SAMPLE_CAPS);
        assert_ne!(c1.to_bits(), c3.to_bits(), "seed must reach the sampler");
        assert!((0.0..=1.0).contains(&b1));
    }

    /// Mixed-precision schedules: a layer's precision override reaches the
    /// digit sampler (W4 layers stream fewer digits on a serial engine),
    /// dense engines schedule the override identically, and the override
    /// is part of the cycle-cache identity.
    #[test]
    fn layer_precision_overrides_drive_serial_digit_streaming() {
        use tpe_arith::Precision;
        let serial = opt4e();
        let layer = LayerShape::new("blk", 64, 784, 576, 1);
        let quant = layer.clone().with_precision(Precision::W4);
        assert_eq!(layer_a_bits(&serial, &layer), 8, "inherits the engine");
        assert_eq!(layer_a_bits(&serial, &quant), 4, "override wins");

        let caps = SampleProfile::Quick.caps();
        let cache = EngineCache::new();
        let s8 = schedule_layer_with(&cache, &serial, &layer, 3, caps);
        let s4 = schedule_layer_with(&cache, &serial, &quant, 3, caps);
        assert!(
            s4.cycles < s8.cycles,
            "W4 layer must stream fewer digits: {} vs {}",
            s4.cycles,
            s8.cycles
        );
        assert_eq!(
            cache.stats().cycle_misses,
            2,
            "override must be its own cycle-cache entry"
        );

        // Dense parallel engines do one full-width MAC per lane-cycle:
        // the override changes nothing in their schedule.
        let dense = EngineSpec::dense(PeStyle::TraditionalMac, ClassicArch::Tpu, 1.0);
        assert_eq!(
            schedule_layer_with(&cache, &dense, &layer, 3, caps),
            schedule_layer_with(&cache, &dense, &quant, 3, caps),
        );

        // End to end: the quantized ResNet-18 preset beats the plain one
        // on a serial engine.
        let (plain, _) = serial_model_cycles(&cache, &serial, &models::resnet18(), 9, caps);
        let (q, _) = serial_model_cycles(&cache, &serial, &models::resnet18_quantized(), 9, caps);
        assert!(q < plain, "quantized preset must be faster: {q} vs {plain}");
    }

    /// A layer override corrects the operand budget to its own width:
    /// W4 layers on a W8 engine sample 2× the operands (same cycle mass),
    /// W16 layers half; no override leaves caller caps untouched.
    #[test]
    fn layer_override_rescales_sampling_caps() {
        use tpe_arith::Precision;
        let engine = opt4e(); // W8
        let base = SampleProfile::Sweep.caps();
        let plain = LayerShape::new("p", 8, 8, 8, 1);
        assert_eq!(caps_for_layer(&engine, &plain, base), base);
        let w4 = plain.clone().with_precision(Precision::W4);
        assert_eq!(
            caps_for_layer(&engine, &w4, base).max_operands,
            base.max_operands * 2
        );
        let w16 = plain.clone().with_precision(Precision::W16);
        let corrected = caps_for_layer(&engine, &w16, base);
        assert_eq!(corrected.max_operands, base.max_operands / 2);
        assert_eq!(corrected.max_rounds, base.max_rounds);
        // On a W16 engine, a W4 layer gets the full 4× correction even
        // though the caller budgeted for W16.
        let engine16 = engine.with_precision(Precision::W16);
        assert_eq!(
            caps_for_layer(&engine16, &w4, base).max_operands,
            base.max_operands * 4
        );
    }

    /// The streaming seed must reproduce the `format!` bytes exactly: the
    /// derived sampled seeds feed pinned golden CSVs.
    #[test]
    fn layer_seed_streams_the_exact_format_bytes() {
        for (i, name) in [
            (0usize, "conv1"),
            (7, "l2.0-3x3s2"),
            (19, ""),
            (9_876_543_210, "weird/τ—name"),
            (usize::MAX, "max"),
        ] {
            let layer = LayerShape::new(name, 1, 1, 1, 1);
            assert_eq!(
                layer_seed(42, i, &layer),
                42 ^ fnv1a(&format!("{i}/{}", layer.name)),
                "index {i} name {name:?}"
            );
        }
    }

    /// The dedup'd assembly behind the model cache must be bit-identical
    /// to the naive per-layer oracle — dense and serial, repeated shapes,
    /// mixed-precision overrides — and the busy pool must reproduce
    /// [`serial_model_cycles`]' aggregate exactly.
    #[test]
    fn assembled_record_matches_the_naive_walk() {
        // Repeat shapes on purpose: layers 0/2 share (shape, a_bits) and
        // dedup in analytic mode; the W4 override forces its own group.
        let net = NetworkModel {
            name: "dup-heavy".into(),
            layers: vec![
                LayerShape::new("a0", 64, 784, 576, 1),
                LayerShape::new("b", 32, 196, 288, 2),
                LayerShape::new("a1", 64, 784, 576, 1),
                LayerShape::new("a4", 64, 784, 576, 1).with_precision(tpe_arith::Precision::W4),
            ],
        };
        let engines = [
            opt4e(),
            EngineSpec::dense(PeStyle::TraditionalMac, ClassicArch::Tpu, 1.0),
        ];
        for engine in &engines {
            let price = engine.price().expect("paper clocks close timing");
            for model in [CycleModel::Sampled, CycleModel::Analytic] {
                let caps = SerialSampleCaps {
                    model,
                    ..SampleProfile::Quick.caps()
                };
                let cache = EngineCache::new();
                let naive = evaluate_model_with(&cache, engine, &price, &net, 9, caps);
                let rec = assemble_model_record(&cache, engine, &price, &net, 9, caps);
                assert_eq!(rec.to_report(engine), naive, "{engine:?} {model:?}");
                if matches!(engine.kind, ArchKind::Serial) {
                    let mp = serial_config(engine).mp;
                    let (cycles, busy_frac) = serial_model_cycles(&cache, engine, &net, 9, caps);
                    assert_eq!(rec.cycles.to_bits(), cycles.to_bits());
                    assert_eq!(
                        (rec.busy_sum / (rec.cycles * mp as f64)).to_bits(),
                        busy_frac.to_bits(),
                        "pooled busy cycles must reproduce the dse aggregate"
                    );
                }
            }
        }
    }

    /// In analytic mode the walk schedules each distinct (shape, a_bits)
    /// once: the duplicate layers above must not add cycle-cache entries.
    #[test]
    fn analytic_assembly_dedups_repeated_shapes() {
        let net = NetworkModel {
            name: "dups".into(),
            layers: (0..6)
                .map(|i| LayerShape::new(format!("l{i}"), 64, 784, 576, 1))
                .collect(),
        };
        let caps = SerialSampleCaps {
            model: CycleModel::Analytic,
            ..SampleProfile::Quick.caps()
        };
        let engine = opt4e();
        let price = engine.price().unwrap();
        let cache = EngineCache::new();
        assemble_model_record(&cache, &engine, &price, &net, 3, caps);
        let stats = cache.stats();
        assert_eq!(cache.cycles_len(), 1, "six identical layers, one entry");
        assert_eq!(
            (stats.cycle_lookups, stats.cycle_misses),
            (1, 1),
            "the local group map must absorb the other five lookups"
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(10))]

        /// Property form of the equivalence: random small networks (with
        /// deliberate shape repetition and random per-layer precision
        /// overrides), both cycle models, every precision preset — the
        /// dedup'd assembly reproduces the naive walk bit for bit.
        #[test]
        fn assembly_equivalence_holds_for_random_networks(
            shapes in proptest::collection::vec(
                (1usize..32, 1usize..48, 1usize..64, 1usize..3, 0u8..4),
                1..5,
            ),
            dup in proptest::bool::ANY,
            seed in 0u64..500,
        ) {
            use tpe_arith::Precision;
            let mut layers: Vec<LayerShape> = shapes
                .iter()
                .enumerate()
                .map(|(i, &(m, n, k, r, p))| {
                    let l = LayerShape::new(format!("l{i}"), m, n, k, r);
                    match p {
                        1 => l.with_precision(Precision::W4),
                        2 => l.with_precision(Precision::W8),
                        3 => l.with_precision(Precision::W16),
                        _ => l,
                    }
                })
                .collect();
            if dup {
                // Re-append the first layer under a new name: same shape
                // and override, different per-layer seed.
                let mut copy = layers[0].clone();
                copy.name = "dup".into();
                layers.push(copy);
            }
            let net = NetworkModel { name: "prop".into(), layers };
            for engine in [
                opt4e(),
                EngineSpec::serial(PeStyle::Opt3, EncodingKind::Csd, 2.0),
                EngineSpec::dense(PeStyle::TraditionalMac, ClassicArch::Tpu, 1.0),
            ] {
                let price = engine.price().expect("paper clocks close timing");
                for model in [CycleModel::Sampled, CycleModel::Analytic] {
                    for precision in [Precision::W4, Precision::W8, Precision::W16] {
                        let engine = engine.clone().with_precision(precision);
                        let caps = SerialSampleCaps {
                            model,
                            ..SampleProfile::Quick.caps_for(precision)
                        };
                        let cache = EngineCache::new();
                        let naive =
                            evaluate_model_with(&cache, &engine, &price, &net, seed, caps);
                        let rec =
                            assemble_model_record(&cache, &engine, &price, &net, seed, caps);
                        proptest::prop_assert_eq!(
                            rec.to_report(&engine),
                            naive,
                            "{:?} {:?} {:?}",
                            engine.style,
                            model,
                            precision
                        );
                    }
                }
            }
        }
    }

    /// The traffic model's reuse accounting: weights fetched once,
    /// activations once per output-tile column pass, outputs once — and
    /// the cube's 10-wide tiles pay more activation passes than the
    /// 32-wide planes.
    #[test]
    fn layer_traffic_counts_tile_reuse() {
        let layer = LayerShape::new("t", 64, 96, 128, 1);
        let tpu = EngineSpec::dense(PeStyle::TraditionalMac, ClassicArch::Tpu, 1.0);
        let t = layer_traffic(&tpu, &layer);
        assert_eq!(t.weight_bytes, (128 * 96) as f64, "W8: 1 byte/elem");
        assert_eq!(t.act_bytes, (64 * 128 * 3) as f64, "⌈96/32⌉ = 3 passes");
        assert_eq!(t.out_bytes, (64 * 96) as f64);
        assert_eq!(
            t.footprint_bytes,
            (128 * 96 + 64 * 128 + 64 * 96) as f64,
            "footprint counts every distinct byte once"
        );
        let cube = EngineSpec::dense(PeStyle::TraditionalMac, ClassicArch::Ascend, 1.0);
        let c = layer_traffic(&cube, &layer);
        assert_eq!(c.act_bytes, (64 * 128 * 10) as f64, "⌈96/10⌉ = 10 passes");
        assert!(t.intensity(layer.macs()) > 0.0);
        // Serial engines stream the same GEMM operands as the 32-wide
        // planes.
        assert_eq!(layer_traffic(&opt4e(), &layer), t);
    }

    /// With `Unbounded` memory the roofline is the identity — compute
    /// cycles pass through bit-for-bit and every layer is compute-bound.
    #[test]
    fn unbounded_roofline_is_the_identity() {
        let layer = LayerShape::new("t", 64, 784, 576, 1);
        let engine = opt4e();
        let t = layer_traffic(&engine, &layer);
        let compute = 12_345.678_f64;
        let (eff, bound) = t.roofline(&MemorySpec::unbounded(), compute);
        assert_eq!(eff.to_bits(), compute.to_bits());
        assert_eq!(bound, Bound::Compute);
    }

    /// A starved corner flips a fat layer off the compute roof: effective
    /// delay exceeds compute-only delay and the bound reports the binding
    /// resource. SRAM-resident working sets bind on SRAM bandwidth;
    /// spilled ones on DRAM.
    #[test]
    fn finite_corners_bind_layers_on_bandwidth() {
        let layer = LayerShape::new("fat", 256, 1024, 1024, 1);
        let base = EngineSpec::dense(PeStyle::TraditionalMac, ClassicArch::Tpu, 1.0);
        let t = layer_traffic(&base, &layer);
        let compute = 1_000.0; // far under the traffic's bandwidth demand

        // Huge SRAM, starved DRAM: footprint fits, so DRAM sees only the
        // footprint — but 1 B/cycle still dominates.
        let starved_dram = MemorySpec {
            sram_kib: 1 << 20,
            sram_bw: 1 << 20,
            dram_bw: 1,
            name: "starved-dram",
        };
        let (eff, bound) = t.roofline(&starved_dram, compute);
        assert_eq!(bound, Bound::Dram);
        assert!(eff > compute);
        assert_eq!(eff, t.footprint_bytes, "resident set crosses DRAM once");

        // Tiny SRAM: the working set spills and full streamed traffic
        // crosses DRAM.
        let spilled = MemorySpec {
            sram_kib: 1,
            ..starved_dram
        };
        let (eff_spill, _) = t.roofline(&spilled, compute);
        assert_eq!(eff_spill, t.total_bytes());
        assert!(eff_spill > eff);

        // Starved SRAM port, generous DRAM: SRAM is the roof.
        let starved_sram = MemorySpec {
            sram_kib: 1 << 20,
            sram_bw: 1,
            dram_bw: 1 << 20,
            name: "starved-sram",
        };
        let (eff_s, bound_s) = t.roofline(&starved_sram, compute);
        assert_eq!(bound_s, Bound::Sram);
        assert_eq!(eff_s, t.total_bytes());
    }

    /// A bounded layer row reports a longer delay, diluted utilization
    /// and the extra idle-energy of its stall cycles — while the
    /// unbounded row on the same engine is untouched.
    #[test]
    fn bounded_layer_rows_stretch_delay_and_dilute_utilization() {
        let layer = LayerShape::new("fat", 256, 1024, 1024, 1);
        let base = EngineSpec::dense(PeStyle::TraditionalMac, ClassicArch::Tpu, 1.0);
        let price = base.price().unwrap();
        let cache = EngineCache::new();
        let s = schedule_layer_with(&cache, &base, &layer, 0, MODEL_SAMPLE_CAPS);
        let free = layer_row(&base, &price, &layer, s);
        assert_eq!(free.bound, Bound::Compute);
        assert!(free.bytes_moved > 0.0);
        assert!(free.intensity_ops_per_byte > 0.0);

        let edge = base.clone().with_memory(MemorySpec::edge());
        let bounded = layer_row(&edge, &price, &layer, s);
        assert!(
            bounded.delay_us > free.delay_us,
            "edge corner must stretch the fat layer: {} vs {}",
            bounded.delay_us,
            free.delay_us
        );
        assert_ne!(bounded.bound, Bound::Compute);
        assert!(bounded.utilization < free.utilization);
        assert!(
            bounded.energy_uj > free.energy_uj,
            "stall cycles burn idle power"
        );
        assert_eq!(bounded.bytes_moved, free.bytes_moved, "traffic is traffic");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(10))]

        /// Narrower operands never move more bytes: per layer,
        /// `bytes_moved` is monotonically non-increasing W16 → W8 → W4.
        #[test]
        fn bytes_moved_shrinks_with_precision(
            m in 1usize..128,
            n in 1usize..256,
            k in 1usize..256,
            r in 1usize..3,
            serial in proptest::bool::ANY,
        ) {
            use tpe_arith::Precision;
            let layer = LayerShape::new("p", m, n, k, r);
            let base = if serial {
                opt4e()
            } else {
                EngineSpec::dense(PeStyle::TraditionalMac, ClassicArch::Tpu, 1.0)
            };
            let bytes = |p: Precision| {
                layer_traffic(&base.clone().with_precision(p), &layer).total_bytes()
            };
            let (w16, w8, w4) = (bytes(Precision::W16), bytes(Precision::W8), bytes(Precision::W4));
            proptest::prop_assert!(w16 >= w8 && w8 >= w4, "{w16} {w8} {w4}");
            proptest::prop_assert!(w4 > 0.0);
        }
    }

    /// The memoized record reproduces the raw sampler bit-for-bit, and a
    /// repeated evaluation is served from memory.
    #[test]
    fn cached_serial_cycles_match_the_raw_sampler() {
        let engine = opt4e();
        let cache = EngineCache::new();
        let layer = LayerShape::new("probe", 64, 128, 64, 1);
        let caps = SampleProfile::Quick.caps();
        let rec = cached_serial_cycles(&cache, &engine, &layer, 11, caps);

        let cfg = serial_config(&engine);
        let encoder = engine.encoding.encoder();
        let stats = sample_serial_cycles(&cfg, encoder.as_ref(), 8, &layer, 11, caps);
        assert_eq!(rec.cycles.to_bits(), stats.cycles.to_bits());
        assert_eq!(
            rec.busy_sum.to_bits(),
            stats.busy.iter().sum::<f64>().to_bits()
        );
        assert_eq!(rec.utilization().to_bits(), stats.utilization().to_bits());
        assert_eq!(rec.columns as usize, stats.busy.len());
        assert!(rec.busy_min <= rec.busy_max);

        let before = cache.stats();
        let again = cached_serial_cycles(&cache, &engine, &layer, 11, caps);
        assert_eq!(again, rec);
        let delta = cache.stats().since(&before);
        assert_eq!((delta.cycle_hits, delta.cycle_misses), (1, 0));
    }
}
