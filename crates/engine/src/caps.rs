//! The `SerialSampleCaps` profile table: every sampling budget the
//! workspace uses, in one place.
//!
//! The statistical serial-layer model
//! ([`tpe_core::arch::workload::sample_serial_cycles`]) caps how many sync
//! rounds and operands it samples; rounds are i.i.d., so capping keeps the
//! estimate unbiased while bounding cost. Before this table existed, each
//! consumer hard-coded its own caps (`SWEEP_SAMPLE_CAPS` in `tpe-dse`,
//! `MODEL_SAMPLE_CAPS` in `tpe-pipeline`) — a drift hazard the profile
//! table closes: callers name the budget they want and the values live
//! here only.

pub use tpe_core::arch::workload::{CycleModel, SerialSampleCaps};

/// A named sampling budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SampleProfile {
    /// Single-experiment default: one layer under the microscope
    /// (Figures 11–13's per-sublayer views).
    Single,
    /// Design-space sweeps: hundreds of points, one layer each
    /// (`repro dse`'s layer workloads).
    Sweep,
    /// Whole-model scheduling: dozens of layers per cell, sampling noise
    /// averages out (`repro models`, `repro dse --model`).
    Model,
    /// Debug-profile tests: tight enough that unoptimized whole-model
    /// cells stay fast.
    Quick,
}

impl SampleProfile {
    /// Every profile, in decreasing budget order.
    pub const ALL: [SampleProfile; 4] = [
        SampleProfile::Single,
        SampleProfile::Sweep,
        SampleProfile::Model,
        SampleProfile::Quick,
    ];

    /// The profile's sampling caps.
    pub const fn caps(self) -> SerialSampleCaps {
        match self {
            SampleProfile::Single => SerialSampleCaps {
                max_rounds: 128,
                max_operands: 1_500_000,
                model: CycleModel::Sampled,
            },
            SampleProfile::Sweep => SerialSampleCaps {
                max_rounds: 48,
                max_operands: 400_000,
                model: CycleModel::Sampled,
            },
            SampleProfile::Model => SerialSampleCaps {
                max_rounds: 24,
                max_operands: 30_000,
                model: CycleModel::Sampled,
            },
            SampleProfile::Quick => SerialSampleCaps {
                max_rounds: 6,
                max_operands: 4_000,
                model: CycleModel::Sampled,
            },
        }
    }

    /// The profile's sampling caps scaled to an operand precision: each
    /// sampled operand contributes digit cycles proportional to its width,
    /// so the operand budget scales inversely with the multiplicand width
    /// to keep the sampled *cycle mass* — what the estimate's variance
    /// rides on — roughly constant across the precision axis (W4 samples
    /// twice the operands of W8, W16 half). Round caps are
    /// width-independent. At the default W8 this is exactly
    /// [`Self::caps`], so every historical cycle-cache key is unchanged.
    pub fn caps_for(self, precision: tpe_arith::Precision) -> SerialSampleCaps {
        let base = self.caps();
        if precision.a_bits == 8 {
            return base;
        }
        SerialSampleCaps {
            max_operands: (base.max_operands * 8 / precision.a_bits as usize).max(1_000),
            ..base
        }
    }

    /// Stable display name.
    pub const fn name(self) -> &'static str {
        match self {
            SampleProfile::Single => "single",
            SampleProfile::Sweep => "sweep",
            SampleProfile::Model => "model",
            SampleProfile::Quick => "quick",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The documented budgets: `single` matches the core model's default,
    /// and the table is strictly decreasing so a bigger scope never means
    /// a bigger per-layer budget.
    #[test]
    fn profile_table_matches_documented_budgets() {
        assert_eq!(SampleProfile::Single.caps(), SerialSampleCaps::default());
        assert_eq!(
            SampleProfile::Sweep.caps(),
            SerialSampleCaps {
                max_rounds: 48,
                max_operands: 400_000,
                model: CycleModel::Sampled,
            }
        );
        assert_eq!(
            SampleProfile::Model.caps(),
            SerialSampleCaps {
                max_rounds: 24,
                max_operands: 30_000,
                model: CycleModel::Sampled,
            }
        );
        for pair in SampleProfile::ALL.windows(2) {
            let (a, b) = (pair[0].caps(), pair[1].caps());
            assert!(
                a.max_rounds > b.max_rounds && a.max_operands > b.max_operands,
                "{:?} must out-budget {:?}",
                pair[0],
                pair[1]
            );
        }
    }

    /// Precision-scaled budgets: W8 is exactly the base table, W4 doubles
    /// the operand budget, W16 halves it, rounds never change.
    #[test]
    fn caps_scale_inversely_with_operand_width() {
        use tpe_arith::Precision;
        for profile in SampleProfile::ALL {
            let base = profile.caps();
            assert_eq!(profile.caps_for(Precision::W8), base);
            let w4 = profile.caps_for(Precision::W4);
            let w16 = profile.caps_for(Precision::W16);
            assert_eq!(w4.max_operands, base.max_operands * 2);
            assert_eq!(w16.max_operands, (base.max_operands / 2).max(1_000));
            assert_eq!(w4.max_rounds, base.max_rounds);
            assert_eq!(w16.max_rounds, base.max_rounds);
        }
    }
}
