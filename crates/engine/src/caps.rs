//! The `SerialSampleCaps` profile table: every sampling budget the
//! workspace uses, in one place.
//!
//! The statistical serial-layer model
//! ([`tpe_core::arch::workload::sample_serial_cycles`]) caps how many sync
//! rounds and operands it samples; rounds are i.i.d., so capping keeps the
//! estimate unbiased while bounding cost. Before this table existed, each
//! consumer hard-coded its own caps (`SWEEP_SAMPLE_CAPS` in `tpe-dse`,
//! `MODEL_SAMPLE_CAPS` in `tpe-pipeline`) — a drift hazard the profile
//! table closes: callers name the budget they want and the values live
//! here only.

pub use tpe_core::arch::workload::SerialSampleCaps;

/// A named sampling budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SampleProfile {
    /// Single-experiment default: one layer under the microscope
    /// (Figures 11–13's per-sublayer views).
    Single,
    /// Design-space sweeps: hundreds of points, one layer each
    /// (`repro dse`'s layer workloads).
    Sweep,
    /// Whole-model scheduling: dozens of layers per cell, sampling noise
    /// averages out (`repro models`, `repro dse --model`).
    Model,
    /// Debug-profile tests: tight enough that unoptimized whole-model
    /// cells stay fast.
    Quick,
}

impl SampleProfile {
    /// Every profile, in decreasing budget order.
    pub const ALL: [SampleProfile; 4] = [
        SampleProfile::Single,
        SampleProfile::Sweep,
        SampleProfile::Model,
        SampleProfile::Quick,
    ];

    /// The profile's sampling caps.
    pub const fn caps(self) -> SerialSampleCaps {
        match self {
            SampleProfile::Single => SerialSampleCaps {
                max_rounds: 128,
                max_operands: 1_500_000,
            },
            SampleProfile::Sweep => SerialSampleCaps {
                max_rounds: 48,
                max_operands: 400_000,
            },
            SampleProfile::Model => SerialSampleCaps {
                max_rounds: 24,
                max_operands: 30_000,
            },
            SampleProfile::Quick => SerialSampleCaps {
                max_rounds: 6,
                max_operands: 4_000,
            },
        }
    }

    /// Stable display name.
    pub const fn name(self) -> &'static str {
        match self {
            SampleProfile::Single => "single",
            SampleProfile::Sweep => "sweep",
            SampleProfile::Model => "model",
            SampleProfile::Quick => "quick",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The documented budgets: `single` matches the core model's default,
    /// and the table is strictly decreasing so a bigger scope never means
    /// a bigger per-layer budget.
    #[test]
    fn profile_table_matches_documented_budgets() {
        assert_eq!(SampleProfile::Single.caps(), SerialSampleCaps::default());
        assert_eq!(
            SampleProfile::Sweep.caps(),
            SerialSampleCaps {
                max_rounds: 48,
                max_operands: 400_000
            }
        );
        assert_eq!(
            SampleProfile::Model.caps(),
            SerialSampleCaps {
                max_rounds: 24,
                max_operands: 30_000
            }
        );
        for pair in SampleProfile::ALL.windows(2) {
            let (a, b) = (pair[0].caps(), pair[1].caps());
            assert!(
                a.max_rounds > b.max_rounds && a.max_operands > b.max_operands,
                "{:?} must out-budget {:?}",
                pair[0],
                pair[1]
            );
        }
    }
}
