//! The process-wide concurrent evaluation cache.
//!
//! Every evaluation path — design-space sweeps, model grids, the figure
//! experiments, `repro serve` queries — reduces to memoizable pure
//! computations:
//!
//! 1. **PE synthesis** (+ node scaling), keyed on the cost-relevant
//!    subset of an engine ([`PeKey`]);
//! 2. **assembled engine prices** (support logic, overhead, peak
//!    throughput), keyed on the full engine identity ([`PriceKey`]) as a
//!    derived layer over the synthesis map;
//! 3. **serial workload cycles** (the sampled sync model), keyed on the
//!    cycle-relevant subset plus the exact seed and sampling caps
//!    ([`CycleKey`]).
//!
//! All maps are sharded: each shard is an independent
//! [`RwLock`]`<HashMap>` selected by key hash, so concurrent sweep workers
//! and serve connections contend only when they touch the same shard, and
//! reads (the overwhelming majority once warm) take a shared lock. A
//! single process-wide instance ([`EngineCache::global`]) replaces the
//! old per-sweep `EvalCache`: a `repro models` grid reuses synthesis the
//! preceding `repro dse` sweep already paid for, and a long-running
//! `repro serve` process converges to all-hit steady state.
//!
//! Memoized values are outputs of deterministic functions of their key,
//! so caching can never change results — the byte-identical golden tests
//! in `tpe-bench` pin this.

use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};

use tpe_arith::encode::EncodingKind;
use tpe_arith::Precision;
use tpe_core::arch::{ArchKind, PeStyle};
use tpe_sim::array::ClassicArch;
use tpe_workloads::LayerShape;

use crate::caps::{CycleModel, SerialSampleCaps};
use crate::spec::{EnginePrice, EngineSpec};

/// Number of independent lock shards per map. 16 keeps the footprint
/// trivial while making same-shard contention unlikely at realistic
/// worker counts.
const SHARDS: usize = 16;

/// The cost-relevant subset of an engine: everything synthesis sees.
///
/// Frequencies are keyed in integer MHz and feature sizes in integer
/// tenths of a nm so the key is `Eq + Hash` without float edge cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PeKey {
    /// PE microarchitecture.
    pub style: PeStyle,
    /// Dense topology, if any (changes the per-PE reduction logic).
    pub dense: Option<ClassicArch>,
    /// Encoding, when it lives *inside* the PE (OPT3 carries its encoder;
    /// dense multipliers bake in Booth and OPT4's encoders sit out of the
    /// array in support logic, so those styles key as `None`).
    pub in_pe_encoding: Option<EncodingKind>,
    /// Operand/accumulator precision: every datapath width synthesis sees
    /// scales with it, so engines at different precisions never share a
    /// synthesis record.
    pub precision: Precision,
    /// Clock constraint in MHz.
    pub freq_mhz: u32,
    /// Process feature size in tenths of a nm.
    pub node_dnm: u32,
}

/// Canonical representative of an encoding's *in-PE recoder hardware*.
///
/// Several encodings map onto the same physical recoder
/// (`tpe_core::arch::designs::encoder_component`): CSD is priced as the
/// EN-T carry-chained Booth recoder, and both radix-2 bit-serial
/// decompositions need only the same zero-skip unit. Synthesis outcomes
/// for such encodings are identical, so the cache keys them together —
/// only the workload model (digit statistics) distinguishes them, and
/// that is keyed separately ([`CycleKey`] uses the raw encoding).
pub fn canonical_encoding(encoding: EncodingKind) -> EncodingKind {
    match encoding {
        EncodingKind::Csd => EncodingKind::EnT,
        EncodingKind::BitSerialSignMagnitude => EncodingKind::BitSerialComplement,
        other => other,
    }
}

impl PeKey {
    /// Extracts the key from an engine spec. The encoding enters the key
    /// only for OPT3 (whose recoder is inside the PE), and then only as its
    /// [`canonical_encoding`] hardware class.
    pub fn of(spec: &EngineSpec) -> Self {
        Self {
            style: spec.style,
            dense: match spec.kind {
                ArchKind::Dense(a) => Some(a),
                ArchKind::Serial => None,
            },
            in_pe_encoding: (spec.style == PeStyle::Opt3)
                .then_some(canonical_encoding(spec.encoding)),
            precision: spec.precision,
            freq_mhz: (spec.freq_ghz * 1e3).round() as u32,
            node_dnm: (spec.node.nm * 10.0).round() as u32,
        }
    }
}

/// The full identity of a priced *engine* (as opposed to [`PeKey`], the
/// synthesis subset): support logic and peak throughput depend on the raw
/// encoding, so EN-T and CSD share a [`PeKey`] but not a `PriceKey`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PriceKey {
    /// PE microarchitecture.
    pub style: PeStyle,
    /// Dense topology, if any.
    pub dense: Option<ClassicArch>,
    /// Raw multiplicand encoding (prices support encoders and the peak
    /// NumPPs divisor).
    pub encoding: EncodingKind,
    /// Operand/accumulator precision (scales synthesis, support logic and
    /// the effective-NumPPs peak divisor).
    pub precision: Precision,
    /// Clock constraint in MHz.
    pub freq_mhz: u32,
    /// Process feature size in tenths of a nm.
    pub node_dnm: u32,
}

impl PriceKey {
    /// Extracts the key from an engine spec.
    pub fn of(spec: &EngineSpec) -> Self {
        Self {
            style: spec.style,
            dense: match spec.kind {
                ArchKind::Dense(a) => Some(a),
                ArchKind::Serial => None,
            },
            encoding: spec.encoding,
            precision: spec.precision,
            freq_mhz: (spec.freq_ghz * 1e3).round() as u32,
            node_dnm: (spec.node.nm * 10.0).round() as u32,
        }
    }
}

/// A priced PE at one corner (node scaling already applied).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeRecord {
    /// PE (or PE-group) cell area in µm².
    pub area_um2: f64,
    /// Power at full datapath activity, µW.
    pub active_power_uw: f64,
    /// Clock-gated idle power, µW.
    pub idle_power_uw: f64,
    /// MAC-equivalent lanes the design provides.
    pub lanes: u32,
}

/// The cycle-relevant subset of a (serial engine, layer, seed, caps)
/// evaluation — everything [`sample_serial_cycles`] sees.
///
/// The serial array geometry is a pure function of the PE style, the
/// digit statistics are a pure function of the *raw* encoding (EN-T and
/// CSD price identically but stream different digit counts, so no
/// canonicalization here), and the layer enters by shape only (its name
/// seasons the seed at the caller).
///
/// [`sample_serial_cycles`]: tpe_core::arch::workload::sample_serial_cycles
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CycleKey {
    /// Serial PE style (fixes the bit-slice geometry).
    pub style: PeStyle,
    /// Multiplicand encoding (fixes the digit-count distribution).
    pub encoding: EncodingKind,
    /// Encoded-multiplicand width the digit statistics are drawn at — the
    /// cycle-relevant subset of the precision: a layer-level precision
    /// override (mixed-precision schedules) or the engine's own. `b_bits`
    /// and `acc_bits` never reach the cycle model, so they stay out of the
    /// key.
    pub a_bits: u32,
    /// GEMM rows.
    pub m: usize,
    /// GEMM columns.
    pub n: usize,
    /// Reduction dimension.
    pub k: usize,
    /// Layer repeat count.
    pub repeats: usize,
    /// The exact RNG seed the sampler is driven with.
    pub seed: u64,
    /// Sampled-round cap.
    pub max_rounds: usize,
    /// Sampled-operand budget.
    pub max_operands: usize,
    /// Which cycle backend produced the record. Keeping the mode in the
    /// key lets sampled and analytic results coexist in one cache without
    /// cross-contamination.
    pub model: CycleModel,
}

impl CycleKey {
    /// Builds the key for scheduling `layer` on `spec` with `seed`/`caps`.
    /// The digit width is the layer's precision override when present
    /// (mixed-precision schedules), the engine's precision otherwise.
    ///
    /// Analytic results are a pure function of (engine, layer): the seed
    /// and the numeric sampling budgets are canonicalized to zero in the
    /// key, so every seed/caps combination shares one analytic record —
    /// which is also what makes analytic cold results seed-independent.
    pub fn of(spec: &EngineSpec, layer: &LayerShape, seed: u64, caps: SerialSampleCaps) -> Self {
        let analytic = caps.model == CycleModel::Analytic;
        Self {
            style: spec.style,
            encoding: spec.encoding,
            a_bits: crate::schedule::layer_a_bits(spec, layer),
            m: layer.m,
            n: layer.n,
            k: layer.k,
            repeats: layer.repeats,
            seed: if analytic { 0 } else { seed },
            max_rounds: if analytic { 0 } else { caps.max_rounds },
            max_operands: if analytic { 0 } else { caps.max_operands },
            model: caps.model,
        }
    }
}

/// The memoized outcome of one serial-layer sampling run: the per-column
/// busy vector collapsed to the aggregates every consumer derives from it
/// (bit-identically to the original `SerialCycleStats` expressions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SerialLayerRecord {
    /// Total array cycles (sync barriers included).
    pub cycles: f64,
    /// Sum of per-column busy cycles (in column order, as the stats
    /// struct sums them).
    pub busy_sum: f64,
    /// Busy cycles of the fastest column.
    pub busy_min: f64,
    /// Busy cycles of the slowest column.
    pub busy_max: f64,
    /// Sync rounds × output passes (the serial tile count).
    pub rounds: f64,
    /// Columns in the array (the busy vector's length).
    pub columns: u32,
}

impl SerialLayerRecord {
    /// Average busy fraction across columns — identical arithmetic to
    /// `SerialCycleStats::utilization`.
    pub fn utilization(&self) -> f64 {
        self.busy_sum / (self.cycles * f64::from(self.columns))
    }
}

/// Cache hit/miss counters at one observation point, per map.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// PE-pricing lookups served from memory.
    pub price_hits: u64,
    /// PE-pricing lookups that ran synthesis.
    pub price_misses: u64,
    /// Workload-cycle lookups served from memory.
    pub cycle_hits: u64,
    /// Workload-cycle lookups that ran the sampler.
    pub cycle_misses: u64,
    /// Accounted pricing lookups, counted independently of the hit/miss
    /// branch. At quiescence `price_lookups == price_hits + price_misses`
    /// — the consistency invariant the serve `stats` op exposes so clients
    /// can detect broken accounting (a counting site added on one side but
    /// not the other).
    pub price_lookups: u64,
    /// Accounted cycle lookups; at quiescence
    /// `cycle_lookups == cycle_hits + cycle_misses`.
    pub cycle_lookups: u64,
}

impl CacheStats {
    /// Total lookups served from memory.
    pub fn hits(&self) -> u64 {
        self.price_hits + self.cycle_hits
    }

    /// Total lookups that computed.
    pub fn misses(&self) -> u64 {
        self.price_misses + self.cycle_misses
    }

    /// Total accounted lookups across both maps. At quiescence this equals
    /// [`Self::hits`]` + `[`Self::misses`] — each lookup increments its
    /// map's lookup counter and then exactly one of that map's hit/miss
    /// counters.
    pub fn lookups(&self) -> u64 {
        self.price_lookups + self.cycle_lookups
    }

    /// Fraction of lookups served from memory (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }

    /// Counter deltas since an earlier snapshot — how a single sweep, grid
    /// or query batch behaved against the shared global cache.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            price_hits: self.price_hits.saturating_sub(earlier.price_hits),
            price_misses: self.price_misses.saturating_sub(earlier.price_misses),
            cycle_hits: self.cycle_hits.saturating_sub(earlier.cycle_hits),
            cycle_misses: self.cycle_misses.saturating_sub(earlier.cycle_misses),
            price_lookups: self.price_lookups.saturating_sub(earlier.price_lookups),
            cycle_lookups: self.cycle_lookups.saturating_sub(earlier.cycle_lookups),
        }
    }
}

/// A plain-data export of every memoized entry across the three maps —
/// the unit of cache persistence ([`crate::snapshot`]) and of bulk
/// warm-start import. Entry order is unspecified (shard hashing is not
/// stable across processes); the snapshot codec canonicalizes it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheContents {
    /// PE synthesis outcomes (`None` = cannot close timing).
    pub records: Vec<(PeKey, Option<PeRecord>)>,
    /// Assembled engine prices (`None` = infeasible corner).
    pub prices: Vec<(PriceKey, Option<EnginePrice>)>,
    /// Serial-cycle evaluations.
    pub cycles: Vec<(CycleKey, SerialLayerRecord)>,
}

impl CacheContents {
    /// Total entries across the three maps.
    pub fn len(&self) -> usize {
        self.records.len() + self.prices.len() + self.cycles.len()
    }

    /// Whether all three maps are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Sharded concurrent memoization of pricing and cycle outcomes.
///
/// `None` pricing values record corners where the design cannot close
/// timing, so infeasibility is cached too.
#[derive(Debug)]
pub struct EngineCache {
    records: [RwLock<HashMap<PeKey, Option<PeRecord>>>; SHARDS],
    prices: [RwLock<HashMap<PriceKey, Option<EnginePrice>>>; SHARDS],
    cycles: [RwLock<HashMap<CycleKey, SerialLayerRecord>>; SHARDS],
    price_hits: AtomicU64,
    price_misses: AtomicU64,
    cycle_hits: AtomicU64,
    cycle_misses: AtomicU64,
    price_lookups: AtomicU64,
    cycle_lookups: AtomicU64,
    /// Counter levels at the last [`Self::window_delta`] call — the
    /// observation window the serve `stats` op reports per-window rates
    /// over.
    last_window: Mutex<CacheStats>,
}

impl Default for EngineCache {
    fn default() -> Self {
        Self {
            records: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            prices: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            cycles: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            price_hits: AtomicU64::new(0),
            price_misses: AtomicU64::new(0),
            cycle_hits: AtomicU64::new(0),
            cycle_misses: AtomicU64::new(0),
            price_lookups: AtomicU64::new(0),
            cycle_lookups: AtomicU64::new(0),
            last_window: Mutex::new(CacheStats::default()),
        }
    }
}

fn shard_of(key: &impl Hash) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % SHARDS
}

impl EngineCache {
    /// An empty, isolated cache (tests and honest cold-timing runs).
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide instance every default evaluation path shares.
    pub fn global() -> &'static EngineCache {
        static GLOBAL: OnceLock<EngineCache> = OnceLock::new();
        GLOBAL.get_or_init(EngineCache::new)
    }

    /// Returns the pricing record for `key`, running `price` on a miss.
    ///
    /// The computation runs outside any lock; when two threads race on the
    /// same cold key both may price, and the first insert wins — pricing
    /// is deterministic, so the outcome is identical either way and
    /// readers never block on synthesis.
    pub fn pe_record(
        &self,
        key: PeKey,
        price: impl FnOnce() -> Option<PeRecord>,
    ) -> Option<PeRecord> {
        let shard = &self.records[shard_of(&key)];
        self.price_lookups.fetch_add(1, Ordering::Relaxed);
        if let Some(rec) = shard.read().expect("cache poisoned").get(&key) {
            self.price_hits.fetch_add(1, Ordering::Relaxed);
            return *rec;
        }
        self.price_misses.fetch_add(1, Ordering::Relaxed);
        let rec = price();
        *shard
            .write()
            .expect("cache poisoned")
            .entry(key)
            .or_insert(rec)
    }

    /// Returns the assembled engine price for `key`, running `assemble` on
    /// a miss.
    ///
    /// This is a derived layer over [`Self::pe_record`]: hits count as
    /// `price_hits`, while a miss delegates to `assemble` (which consults
    /// `pe_record` and does the counting there) — so the hit/miss totals
    /// read exactly as if only the synthesis map existed, just with the
    /// support-logic and peak-throughput assembly memoized too.
    pub fn engine_price(
        &self,
        key: PriceKey,
        assemble: impl FnOnce() -> Option<EnginePrice>,
    ) -> Option<EnginePrice> {
        let shard = &self.prices[shard_of(&key)];
        if let Some(price) = shard.read().expect("cache poisoned").get(&key) {
            // A derived-layer hit is one accounted lookup; a miss counts
            // nothing here — `assemble` consults `pe_record`, which does
            // the lookup *and* hit/miss accounting, keeping the
            // hits+misses == lookups invariant exact.
            self.price_lookups.fetch_add(1, Ordering::Relaxed);
            self.price_hits.fetch_add(1, Ordering::Relaxed);
            return *price;
        }
        let price = assemble();
        *shard
            .write()
            .expect("cache poisoned")
            .entry(key)
            .or_insert(price)
    }

    /// Returns the serial-cycle record for `key`, running `sample` on a
    /// miss. Same race discipline as [`Self::pe_record`].
    pub fn serial_record(
        &self,
        key: CycleKey,
        sample: impl FnOnce() -> SerialLayerRecord,
    ) -> SerialLayerRecord {
        let shard = &self.cycles[shard_of(&key)];
        self.cycle_lookups.fetch_add(1, Ordering::Relaxed);
        if let Some(rec) = shard.read().expect("cache poisoned").get(&key) {
            self.cycle_hits.fetch_add(1, Ordering::Relaxed);
            return *rec;
        }
        self.cycle_misses.fetch_add(1, Ordering::Relaxed);
        let rec = sample();
        *shard
            .write()
            .expect("cache poisoned")
            .entry(key)
            .or_insert(rec)
    }

    /// Counters at this instant.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            price_hits: self.price_hits.load(Ordering::Relaxed),
            price_misses: self.price_misses.load(Ordering::Relaxed),
            cycle_hits: self.cycle_hits.load(Ordering::Relaxed),
            cycle_misses: self.cycle_misses.load(Ordering::Relaxed),
            price_lookups: self.price_lookups.load(Ordering::Relaxed),
            cycle_lookups: self.cycle_lookups.load(Ordering::Relaxed),
        }
    }

    /// Counter deltas since the previous `window_delta` call (the full
    /// totals on the first), then resets the window — so a long-running
    /// server polling this sees per-window rates rather than
    /// ever-growing totals. The window is advanced under a mutex, so
    /// concurrent pollers each get a disjoint slice of the counters.
    pub fn window_delta(&self) -> CacheStats {
        let mut last = self.last_window.lock().expect("cache window poisoned");
        let now = self.stats();
        let delta = now.since(&last);
        *last = now;
        delta
    }

    /// Copies every memoized entry out of the three maps. Only memoized
    /// *values* are exported — hit/miss counters describe this process's
    /// history, not the cache contents, so they stay behind.
    pub fn export(&self) -> CacheContents {
        let mut out = CacheContents::default();
        for shard in &self.records {
            let map = shard.read().expect("cache poisoned");
            out.records.extend(map.iter().map(|(k, v)| (*k, *v)));
        }
        for shard in &self.prices {
            let map = shard.read().expect("cache poisoned");
            out.prices.extend(map.iter().map(|(k, v)| (*k, *v)));
        }
        for shard in &self.cycles {
            let map = shard.read().expect("cache poisoned");
            out.cycles.extend(map.iter().map(|(k, v)| (*k, *v)));
        }
        out
    }

    /// Bulk-inserts exported entries (a warm-start import). First insert
    /// wins, exactly like the per-lookup race discipline — a concurrently
    /// computed value is identical by determinism, so imports can never
    /// change results. Counters are untouched: imported entries surface
    /// as *hits* on their first lookup, which is what makes a
    /// warm-from-snapshot replay read ≈100% hit rate.
    pub fn import(&self, contents: CacheContents) {
        for (key, rec) in contents.records {
            self.records[shard_of(&key)]
                .write()
                .expect("cache poisoned")
                .entry(key)
                .or_insert(rec);
        }
        for (key, price) in contents.prices {
            self.prices[shard_of(&key)]
                .write()
                .expect("cache poisoned")
                .entry(key)
                .or_insert(price);
        }
        for (key, rec) in contents.cycles {
            self.cycles[shard_of(&key)]
                .write()
                .expect("cache poisoned")
                .entry(key)
                .or_insert(rec);
        }
    }

    /// Number of distinct PE/corner pairs priced.
    pub fn priced_len(&self) -> usize {
        self.records
            .iter()
            .map(|s| s.read().expect("cache poisoned").len())
            .sum()
    }

    /// Number of distinct assembled engine prices memoized (the derived
    /// map over the synthesis records).
    pub fn prices_len(&self) -> usize {
        self.prices
            .iter()
            .map(|s| s.read().expect("cache poisoned").len())
            .sum()
    }

    /// Number of distinct serial-cycle evaluations memoized.
    pub fn cycles_len(&self) -> usize {
        self.cycles
            .iter()
            .map(|s| s.read().expect("cache poisoned").len())
            .sum()
    }

    /// Total entries across all three maps (what a snapshot would carry).
    pub fn entry_count(&self) -> usize {
        self.priced_len() + self.prices_len() + self.cycles_len()
    }

    /// Whether nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.entry_count() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(freq_mhz: u32) -> PeKey {
        PeKey {
            style: PeStyle::Opt1,
            dense: Some(ClassicArch::Tpu),
            in_pe_encoding: None,
            precision: Precision::W8,
            freq_mhz,
            node_dnm: 280,
        }
    }

    fn record() -> PeRecord {
        PeRecord {
            area_um2: 1.0,
            active_power_uw: 2.0,
            idle_power_uw: 0.1,
            lanes: 1,
        }
    }

    #[test]
    fn second_lookup_hits() {
        let cache = EngineCache::new();
        let mut priced = 0;
        for _ in 0..3 {
            cache.pe_record(key(1500), || {
                priced += 1;
                Some(record())
            });
        }
        assert_eq!(priced, 1);
        let stats = cache.stats();
        assert_eq!((stats.price_hits, stats.price_misses), (2, 1));
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cache.priced_len(), 1);
        assert_eq!(stats.lookups(), stats.hits() + stats.misses());
    }

    #[test]
    fn infeasible_outcomes_are_cached() {
        let cache = EngineCache::new();
        assert_eq!(cache.pe_record(key(9000), || None), None);
        assert_eq!(
            cache.pe_record(key(9000), || panic!("must not re-price")),
            None
        );
        assert_eq!(cache.stats().price_hits, 1);
    }

    #[test]
    fn distinct_corners_miss() {
        let cache = EngineCache::new();
        cache.pe_record(key(1000), || None);
        cache.pe_record(key(1500), || None);
        assert_eq!(cache.stats().price_misses, 2);
        assert_eq!(cache.priced_len(), 2);
    }

    #[test]
    fn cycle_records_memoize_and_key_on_raw_encoding() {
        let cache = EngineCache::new();
        let spec = EngineSpec::serial(PeStyle::Opt3, EncodingKind::EnT, 2.0);
        let layer = LayerShape::new("t", 8, 8, 64, 1);
        let k = CycleKey::of(&spec, &layer, 7, crate::caps::SampleProfile::Quick.caps());
        let rec = SerialLayerRecord {
            cycles: 10.0,
            busy_sum: 9.0,
            busy_min: 0.2,
            busy_max: 0.9,
            rounds: 1.0,
            columns: 32,
        };
        assert_eq!(cache.serial_record(k, || rec), rec);
        assert_eq!(cache.serial_record(k, || panic!("must hit")), rec);
        // CSD prices like EN-T but streams different digits: the cycle key
        // must distinguish what the price key canonicalizes together.
        let csd = EngineSpec::serial(PeStyle::Opt3, EncodingKind::Csd, 2.0);
        let kc = CycleKey::of(&csd, &layer, 7, crate::caps::SampleProfile::Quick.caps());
        assert_ne!(k, kc);
        assert_eq!(
            canonical_encoding(EncodingKind::Csd),
            canonical_encoding(EncodingKind::EnT)
        );
        let stats = cache.stats();
        assert_eq!((stats.cycle_hits, stats.cycle_misses), (1, 1));
        assert_eq!(cache.cycles_len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn stats_deltas_subtract_fieldwise() {
        let cache = EngineCache::new();
        cache.pe_record(key(1000), || Some(record()));
        let before = cache.stats();
        cache.pe_record(key(1000), || unreachable!());
        cache.pe_record(key(2000), || None);
        let delta = cache.stats().since(&before);
        assert_eq!((delta.price_hits, delta.price_misses), (1, 1));
        assert_eq!(delta.hits() + delta.misses(), 2);
        assert_eq!(delta.lookups(), 2, "deltas keep the lookup invariant");
    }

    #[test]
    fn window_delta_advances_and_resets() {
        let cache = EngineCache::new();
        cache.pe_record(key(1000), || Some(record()));
        cache.pe_record(key(1000), || unreachable!());
        let w1 = cache.window_delta();
        assert_eq!((w1.price_hits, w1.price_misses), (1, 1));
        let w2 = cache.window_delta();
        assert_eq!(w2, CacheStats::default(), "nothing between polls");
        cache.pe_record(key(1000), || unreachable!());
        let w3 = cache.window_delta();
        assert_eq!((w3.price_hits, w3.price_misses), (1, 0));
        assert_eq!(w3.lookups(), 1, "window keeps the lookup invariant");
    }

    /// The derived price layer keeps the accounting invariant: every
    /// `engine_price` call lands exactly one accounted lookup and one
    /// hit-or-miss, whether it hits its own map, delegates to `pe_record`,
    /// or finds the synthesis already cached under a sibling price key.
    #[test]
    fn lookup_counters_match_hits_plus_misses_through_the_derived_layer() {
        let cache = EngineCache::new();
        let price_key = |f| crate::cache::PriceKey {
            style: PeStyle::Opt1,
            dense: Some(ClassicArch::Tpu),
            encoding: EncodingKind::Mbe,
            precision: Precision::W8,
            freq_mhz: f,
            node_dnm: 280,
        };
        let assemble = |cache: &EngineCache, f| {
            cache.pe_record(key(f), || Some(record()));
            None
        };
        cache.engine_price(price_key(1000), || assemble(&cache, 1000)); // cold
        cache.engine_price(price_key(1000), || unreachable!()); // price hit
        cache.engine_price(price_key(1500), || assemble(&cache, 1500)); // cold again
        cache.serial_record(
            CycleKey::of(
                &EngineSpec::serial(PeStyle::Opt3, EncodingKind::EnT, 2.0),
                &LayerShape::new("t", 8, 8, 64, 1),
                7,
                crate::caps::SampleProfile::Quick.caps(),
            ),
            || SerialLayerRecord {
                cycles: 1.0,
                busy_sum: 1.0,
                busy_min: 1.0,
                busy_max: 1.0,
                rounds: 1.0,
                columns: 1,
            },
        );
        let stats = cache.stats();
        assert_eq!(stats.lookups(), stats.hits() + stats.misses());
        assert_eq!(stats.price_lookups, stats.price_hits + stats.price_misses);
        assert_eq!(stats.cycle_lookups, stats.cycle_hits + stats.cycle_misses);
    }

    /// The canonical map must mirror the hardware: encodings keyed together
    /// synthesize to bit-identical OPT3 PE reports (CSD prices as the EN-T
    /// recoder; both bit-serial kinds price as the zero-skip unit), while
    /// MBE's plain Booth recoder stays distinct.
    #[test]
    fn canonical_encodings_share_identical_recoder_hardware() {
        for (a, b) in [
            (EncodingKind::Csd, EncodingKind::EnT),
            (
                EncodingKind::BitSerialSignMagnitude,
                EncodingKind::BitSerialComplement,
            ),
        ] {
            assert_eq!(canonical_encoding(a), canonical_encoding(b));
            let ra = PeStyle::Opt3
                .design_with_encoding(a)
                .synthesize(2.0)
                .unwrap();
            let rb = PeStyle::Opt3
                .design_with_encoding(b)
                .synthesize(2.0)
                .unwrap();
            assert_eq!(ra.area_um2.to_bits(), rb.area_um2.to_bits());
            assert_eq!(
                ra.busy_power_uw().to_bits(),
                rb.busy_power_uw().to_bits(),
                "{a:?}/{b:?} must price identically to share a cache entry"
            );
        }
        assert_ne!(
            canonical_encoding(EncodingKind::Mbe),
            canonical_encoding(EncodingKind::EnT)
        );
    }
}
