//! The process-wide concurrent evaluation cache.
//!
//! Every evaluation path — design-space sweeps, model grids, the figure
//! experiments, `repro serve` queries — reduces to memoizable pure
//! computations:
//!
//! 1. **PE synthesis** (+ node scaling), keyed on the cost-relevant
//!    subset of an engine ([`PeKey`]);
//! 2. **assembled engine prices** (support logic, overhead, peak
//!    throughput), keyed on the full engine identity ([`PriceKey`]) as a
//!    derived layer over the synthesis map;
//! 3. **serial workload cycles** (the sampled sync model), keyed on the
//!    cycle-relevant subset plus the exact seed and sampling caps
//!    ([`CycleKey`]);
//! 4. **whole-model reports** (the aggregated per-layer walk), keyed on
//!    the engine's price/cycle-relevant subset plus the model's identity
//!    and content hash, the cell seed and the sampling caps
//!    ([`ModelKey`]) — so a repeated `model` serve op, grid cell or dse
//!    model point collapses to one lookup instead of an O(layers)
//!    rewalk.
//!
//! All maps are sharded: each shard is an independent
//! [`RwLock`]`<HashMap>` selected by key hash, so concurrent sweep workers
//! and serve connections contend only when they touch the same shard, and
//! reads (the overwhelming majority once warm) take a shared lock. A
//! single process-wide instance ([`EngineCache::global`]) replaces the
//! old per-sweep `EvalCache`: a `repro models` grid reuses synthesis the
//! preceding `repro dse` sweep already paid for, and a long-running
//! `repro serve` process converges to all-hit steady state.
//!
//! Memoized values are outputs of deterministic functions of their key,
//! so caching can never change results — the byte-identical golden tests
//! in `tpe-bench` pin this.

use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use tpe_arith::encode::EncodingKind;
use tpe_arith::Precision;
use tpe_core::arch::{ArchKind, PeStyle};
use tpe_sim::array::ClassicArch;
use tpe_workloads::{LayerShape, NetworkModel};

use crate::caps::{CycleModel, SerialSampleCaps};
use crate::report::{LayerReport, ModelReport};
use crate::spec::{Bound, EnginePrice, EngineSpec};

/// Number of independent lock shards per map. 16 keeps the footprint
/// trivial while making same-shard contention unlikely at realistic
/// worker counts.
const SHARDS: usize = 16;

/// The cost-relevant subset of an engine: everything synthesis sees.
///
/// Frequencies are keyed in integer MHz and feature sizes in integer
/// tenths of a nm so the key is `Eq + Hash` without float edge cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PeKey {
    /// PE microarchitecture.
    pub style: PeStyle,
    /// Dense topology, if any (changes the per-PE reduction logic).
    pub dense: Option<ClassicArch>,
    /// Encoding, when it lives *inside* the PE (OPT3 carries its encoder;
    /// dense multipliers bake in Booth and OPT4's encoders sit out of the
    /// array in support logic, so those styles key as `None`).
    pub in_pe_encoding: Option<EncodingKind>,
    /// Operand/accumulator precision: every datapath width synthesis sees
    /// scales with it, so engines at different precisions never share a
    /// synthesis record.
    pub precision: Precision,
    /// Clock constraint in MHz.
    pub freq_mhz: u32,
    /// Process feature size in tenths of a nm.
    pub node_dnm: u32,
}

/// Canonical representative of an encoding's *in-PE recoder hardware*.
///
/// Several encodings map onto the same physical recoder
/// (`tpe_core::arch::designs::encoder_component`): CSD is priced as the
/// EN-T carry-chained Booth recoder, and both radix-2 bit-serial
/// decompositions need only the same zero-skip unit. Synthesis outcomes
/// for such encodings are identical, so the cache keys them together —
/// only the workload model (digit statistics) distinguishes them, and
/// that is keyed separately ([`CycleKey`] uses the raw encoding).
pub fn canonical_encoding(encoding: EncodingKind) -> EncodingKind {
    match encoding {
        EncodingKind::Csd => EncodingKind::EnT,
        EncodingKind::BitSerialSignMagnitude => EncodingKind::BitSerialComplement,
        other => other,
    }
}

impl PeKey {
    /// Extracts the key from an engine spec. The encoding enters the key
    /// only for OPT3 (whose recoder is inside the PE), and then only as its
    /// [`canonical_encoding`] hardware class.
    pub fn of(spec: &EngineSpec) -> Self {
        Self {
            style: spec.style,
            dense: match spec.kind {
                ArchKind::Dense(a) => Some(a),
                ArchKind::Serial => None,
            },
            in_pe_encoding: (spec.style == PeStyle::Opt3)
                .then_some(canonical_encoding(spec.encoding)),
            precision: spec.precision,
            freq_mhz: (spec.freq_ghz * 1e3).round() as u32,
            node_dnm: (spec.node.nm * 10.0).round() as u32,
        }
    }
}

/// The full identity of a priced *engine* (as opposed to [`PeKey`], the
/// synthesis subset): support logic and peak throughput depend on the raw
/// encoding, so EN-T and CSD share a [`PeKey`] but not a `PriceKey`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PriceKey {
    /// PE microarchitecture.
    pub style: PeStyle,
    /// Dense topology, if any.
    pub dense: Option<ClassicArch>,
    /// Raw multiplicand encoding (prices support encoders and the peak
    /// NumPPs divisor).
    pub encoding: EncodingKind,
    /// Operand/accumulator precision (scales synthesis, support logic and
    /// the effective-NumPPs peak divisor).
    pub precision: Precision,
    /// Clock constraint in MHz.
    pub freq_mhz: u32,
    /// Process feature size in tenths of a nm.
    pub node_dnm: u32,
    /// On-chip SRAM capacity in KiB (0 = unbounded). The price itself is
    /// memory-independent today, but the key carries the full engine
    /// identity so a future memory-priced corner can never alias a
    /// compute-only entry.
    pub sram_kib: u32,
    /// SRAM bandwidth in bytes/cycle (0 = unbounded).
    pub sram_bw: u32,
    /// DRAM bandwidth in bytes/cycle (0 = unbounded).
    pub dram_bw: u32,
}

impl PriceKey {
    /// Extracts the key from an engine spec.
    pub fn of(spec: &EngineSpec) -> Self {
        Self {
            style: spec.style,
            dense: match spec.kind {
                ArchKind::Dense(a) => Some(a),
                ArchKind::Serial => None,
            },
            encoding: spec.encoding,
            precision: spec.precision,
            freq_mhz: (spec.freq_ghz * 1e3).round() as u32,
            node_dnm: (spec.node.nm * 10.0).round() as u32,
            sram_kib: spec.memory.sram_kib,
            sram_bw: spec.memory.sram_bw,
            dram_bw: spec.memory.dram_bw,
        }
    }
}

/// A priced PE at one corner (node scaling already applied).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeRecord {
    /// PE (or PE-group) cell area in µm².
    pub area_um2: f64,
    /// Power at full datapath activity, µW.
    pub active_power_uw: f64,
    /// Clock-gated idle power, µW.
    pub idle_power_uw: f64,
    /// MAC-equivalent lanes the design provides.
    pub lanes: u32,
}

/// The cycle-relevant subset of a (serial engine, layer, seed, caps)
/// evaluation — everything [`sample_serial_cycles`] sees.
///
/// The serial array geometry is a pure function of the PE style, the
/// digit statistics are a pure function of the *raw* encoding (EN-T and
/// CSD price identically but stream different digit counts, so no
/// canonicalization here), and the layer enters by shape only (its name
/// seasons the seed at the caller).
///
/// [`sample_serial_cycles`]: tpe_core::arch::workload::sample_serial_cycles
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CycleKey {
    /// Serial PE style (fixes the bit-slice geometry).
    pub style: PeStyle,
    /// Multiplicand encoding (fixes the digit-count distribution).
    pub encoding: EncodingKind,
    /// Encoded-multiplicand width the digit statistics are drawn at — the
    /// cycle-relevant subset of the precision: a layer-level precision
    /// override (mixed-precision schedules) or the engine's own. `b_bits`
    /// and `acc_bits` never reach the cycle model, so they stay out of the
    /// key.
    pub a_bits: u32,
    /// GEMM rows.
    pub m: usize,
    /// GEMM columns.
    pub n: usize,
    /// Reduction dimension.
    pub k: usize,
    /// Layer repeat count.
    pub repeats: usize,
    /// The exact RNG seed the sampler is driven with.
    pub seed: u64,
    /// Sampled-round cap.
    pub max_rounds: usize,
    /// Sampled-operand budget.
    pub max_operands: usize,
    /// Which cycle backend produced the record. Keeping the mode in the
    /// key lets sampled and analytic results coexist in one cache without
    /// cross-contamination.
    pub model: CycleModel,
}

impl CycleKey {
    /// Builds the key for scheduling `layer` on `spec` with `seed`/`caps`.
    /// The digit width is the layer's precision override when present
    /// (mixed-precision schedules), the engine's precision otherwise.
    ///
    /// Analytic results are a pure function of (engine, layer): the seed
    /// and the numeric sampling budgets are canonicalized to zero in the
    /// key, so every seed/caps combination shares one analytic record —
    /// which is also what makes analytic cold results seed-independent.
    pub fn of(spec: &EngineSpec, layer: &LayerShape, seed: u64, caps: SerialSampleCaps) -> Self {
        let analytic = caps.model == CycleModel::Analytic;
        Self {
            style: spec.style,
            encoding: spec.encoding,
            a_bits: crate::schedule::layer_a_bits(spec, layer),
            m: layer.m,
            n: layer.n,
            k: layer.k,
            repeats: layer.repeats,
            seed: if analytic { 0 } else { seed },
            max_rounds: if analytic { 0 } else { caps.max_rounds },
            max_operands: if analytic { 0 } else { caps.max_operands },
            model: caps.model,
        }
    }
}

/// The memoized outcome of one serial-layer sampling run: the per-column
/// busy vector collapsed to the aggregates every consumer derives from it
/// (bit-identically to the original `SerialCycleStats` expressions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SerialLayerRecord {
    /// Total array cycles (sync barriers included).
    pub cycles: f64,
    /// Sum of per-column busy cycles (in column order, as the stats
    /// struct sums them).
    pub busy_sum: f64,
    /// Busy cycles of the fastest column.
    pub busy_min: f64,
    /// Busy cycles of the slowest column.
    pub busy_max: f64,
    /// Sync rounds × output passes (the serial tile count).
    pub rounds: f64,
    /// Columns in the array (the busy vector's length).
    pub columns: u32,
}

impl SerialLayerRecord {
    /// Average busy fraction across columns — identical arithmetic to
    /// `SerialCycleStats::utilization`.
    pub fn utilization(&self) -> f64 {
        self.busy_sum / (self.cycles * f64::from(self.columns))
    }
}

/// FNV-1a content hash over a model's layer list: layer count, then per
/// layer its name (NUL-terminated so boundaries are unambiguous), GEMM
/// dims, repeat count and optional precision override. Two models with
/// the same name but different layer content must never share a
/// [`ModelKey`].
fn model_content_hash(net: &NetworkModel) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let step = |h: u64, b: u8| (h ^ u64::from(b)).wrapping_mul(PRIME);
    let word = |mut h: u64, v: u64| {
        for b in v.to_le_bytes() {
            h = step(h, b);
        }
        h
    };
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    h = word(h, net.layers.len() as u64);
    for layer in &net.layers {
        for b in layer.name.bytes() {
            h = step(h, b);
        }
        h = step(h, 0);
        h = word(h, layer.m as u64);
        h = word(h, layer.n as u64);
        h = word(h, layer.k as u64);
        h = word(h, layer.repeats as u64);
        match layer.precision {
            None => h = step(h, 0),
            Some(p) => {
                h = step(h, 1);
                h = word(h, u64::from(p.a_bits));
                h = word(h, u64::from(p.b_bits));
                h = word(h, u64::from(p.acc_bits));
            }
        }
    }
    h
}

/// The identity of one whole-model evaluation — everything the model
/// walk ([`crate::schedule::evaluate_model_with`]) sees: the engine's
/// price/cycle-relevant subset (the [`PriceKey`] fields), the model's
/// name and layer-content hash, the exact cell seed and sampling caps,
/// and the cycle backend.
///
/// Mirroring [`CycleKey`], analytic evaluations canonicalize the seed
/// and the numeric sampling budgets to zero: the closed-form walk is a
/// pure function of (engine, model), so every seed/caps combination
/// shares one analytic record.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelKey {
    /// PE microarchitecture.
    pub style: PeStyle,
    /// Dense topology, if any.
    pub dense: Option<ClassicArch>,
    /// Raw multiplicand encoding.
    pub encoding: EncodingKind,
    /// Engine operand/accumulator precision (per-layer overrides are
    /// content-hashed with the layers).
    pub precision: Precision,
    /// Clock constraint in MHz.
    pub freq_mhz: u32,
    /// Process feature size in tenths of a nm.
    pub node_dnm: u32,
    /// Network name (the identity half of the model axis).
    pub model: String,
    /// `model_content_hash` over the layer list (the content half).
    pub layers_hash: u64,
    /// The exact cell seed the per-layer seeds are derived from
    /// (0 when analytic).
    pub seed: u64,
    /// Sampled-round cap (0 when analytic).
    pub max_rounds: usize,
    /// Sampled-operand budget (0 when analytic).
    pub max_operands: usize,
    /// Which cycle backend produced the record.
    pub cycle_model: CycleModel,
    /// On-chip SRAM capacity in KiB (0 = unbounded): the roofline changes
    /// per-layer delays, so memory corners must never share a record.
    pub sram_kib: u32,
    /// SRAM bandwidth in bytes/cycle (0 = unbounded).
    pub sram_bw: u32,
    /// DRAM bandwidth in bytes/cycle (0 = unbounded).
    pub dram_bw: u32,
}

impl ModelKey {
    /// Builds the key for evaluating `net` on `spec` with the given cell
    /// `seed` and sampling `caps`.
    pub fn of(spec: &EngineSpec, net: &NetworkModel, seed: u64, caps: SerialSampleCaps) -> Self {
        let analytic = caps.model == CycleModel::Analytic;
        Self {
            style: spec.style,
            dense: match spec.kind {
                ArchKind::Dense(a) => Some(a),
                ArchKind::Serial => None,
            },
            encoding: spec.encoding,
            precision: spec.precision,
            freq_mhz: (spec.freq_ghz * 1e3).round() as u32,
            node_dnm: (spec.node.nm * 10.0).round() as u32,
            model: net.name.clone(),
            layers_hash: model_content_hash(net),
            seed: if analytic { 0 } else { seed },
            max_rounds: if analytic { 0 } else { caps.max_rounds },
            max_operands: if analytic { 0 } else { caps.max_operands },
            cycle_model: caps.model,
            sram_kib: spec.memory.sram_kib,
            sram_bw: spec.memory.sram_bw,
            dram_bw: spec.memory.dram_bw,
        }
    }
}

/// The memoized outcome of one whole-model walk: the shared per-layer
/// rows plus every end-to-end aggregate, so a warm hit rebuilds a
/// bit-identical [`ModelReport`] (or the dse model-point aggregates)
/// with nothing but `Arc` refcount bumps — no per-layer rewalk, no
/// allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelRecord {
    /// Network name (shared with every report built from this record).
    pub model: Arc<str>,
    /// Per-layer breakdown, in execution order (shared slice).
    pub layers: Arc<[LayerReport]>,
    /// Total useful MACs.
    pub total_macs: u64,
    /// Total array cycles (sum over layers, in layer order).
    pub cycles: f64,
    /// End-to-end latency (µs).
    pub delay_us: f64,
    /// Total energy (µJ).
    pub energy_uj: f64,
    /// Delay-weighted average utilization.
    pub utilization: f64,
    /// Total array area (µm²), from the engine price.
    pub area_um2: f64,
    /// Peak throughput (TOPS), from the engine price.
    pub peak_tops: f64,
    /// Total bytes moved (sum over layers).
    pub bytes_moved: f64,
    /// Whole-model arithmetic intensity (ops per byte moved).
    pub intensity_ops_per_byte: f64,
    /// The dominant roofline bound over the model.
    pub bound: Bound,
    /// Pooled per-column busy cycles across layers (in layer order) —
    /// what the dse model-point aggregation
    /// ([`crate::schedule::serial_model_cycles`]) divides by
    /// `cycles × MP`. Zero for dense engines, which never pool busy
    /// cycles.
    pub busy_sum: f64,
}

impl ModelRecord {
    /// Captures a freshly assembled report (plus the serial busy pool).
    pub fn of(report: &ModelReport, busy_sum: f64) -> Self {
        Self {
            model: report.model.clone(),
            layers: report.layers.clone(),
            total_macs: report.total_macs,
            cycles: report.cycles,
            delay_us: report.delay_us,
            energy_uj: report.energy_uj,
            utilization: report.utilization,
            area_um2: report.area_um2,
            peak_tops: report.peak_tops,
            bytes_moved: report.bytes_moved,
            intensity_ops_per_byte: report.intensity_ops_per_byte,
            bound: report.bound,
            busy_sum,
        }
    }

    /// Rebuilds the full report for `engine` — bit-identical to the walk
    /// that produced this record, allocation-free (`EngineSpec` holds no
    /// heap data; everything else is a refcount bump or a plain copy).
    pub fn to_report(&self, engine: &EngineSpec) -> ModelReport {
        ModelReport {
            model: self.model.clone(),
            engine: engine.clone(),
            layers: self.layers.clone(),
            total_macs: self.total_macs,
            cycles: self.cycles,
            delay_us: self.delay_us,
            energy_uj: self.energy_uj,
            utilization: self.utilization,
            area_um2: self.area_um2,
            peak_tops: self.peak_tops,
            bytes_moved: self.bytes_moved,
            intensity_ops_per_byte: self.intensity_ops_per_byte,
            bound: self.bound,
        }
    }
}

/// Cache hit/miss counters at one observation point, per map.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// PE-pricing lookups served from memory.
    pub price_hits: u64,
    /// PE-pricing lookups that ran synthesis.
    pub price_misses: u64,
    /// Workload-cycle lookups served from memory.
    pub cycle_hits: u64,
    /// Workload-cycle lookups that ran the sampler.
    pub cycle_misses: u64,
    /// Accounted pricing lookups, counted independently of the hit/miss
    /// branch. At quiescence `price_lookups == price_hits + price_misses`
    /// — the consistency invariant the serve `stats` op exposes so clients
    /// can detect broken accounting (a counting site added on one side but
    /// not the other).
    pub price_lookups: u64,
    /// Accounted cycle lookups; at quiescence
    /// `cycle_lookups == cycle_hits + cycle_misses`.
    pub cycle_lookups: u64,
    /// Whole-model lookups served from memory.
    pub model_hits: u64,
    /// Whole-model lookups that ran the full per-layer walk.
    pub model_misses: u64,
    /// Accounted whole-model lookups; at quiescence
    /// `model_lookups == model_hits + model_misses`.
    pub model_lookups: u64,
}

impl CacheStats {
    /// Total lookups served from memory.
    pub fn hits(&self) -> u64 {
        self.price_hits + self.cycle_hits + self.model_hits
    }

    /// Total lookups that computed.
    pub fn misses(&self) -> u64 {
        self.price_misses + self.cycle_misses + self.model_misses
    }

    /// Total accounted lookups across all maps. At quiescence this equals
    /// [`Self::hits`]` + `[`Self::misses`] — each lookup increments its
    /// map's lookup counter and then exactly one of that map's hit/miss
    /// counters.
    pub fn lookups(&self) -> u64 {
        self.price_lookups + self.cycle_lookups + self.model_lookups
    }

    /// Fraction of lookups served from memory (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }

    /// Counter deltas since an earlier snapshot — how a single sweep, grid
    /// or query batch behaved against the shared global cache.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            price_hits: self.price_hits.saturating_sub(earlier.price_hits),
            price_misses: self.price_misses.saturating_sub(earlier.price_misses),
            cycle_hits: self.cycle_hits.saturating_sub(earlier.cycle_hits),
            cycle_misses: self.cycle_misses.saturating_sub(earlier.cycle_misses),
            price_lookups: self.price_lookups.saturating_sub(earlier.price_lookups),
            cycle_lookups: self.cycle_lookups.saturating_sub(earlier.cycle_lookups),
            model_hits: self.model_hits.saturating_sub(earlier.model_hits),
            model_misses: self.model_misses.saturating_sub(earlier.model_misses),
            model_lookups: self.model_lookups.saturating_sub(earlier.model_lookups),
        }
    }
}

/// A plain-data export of every memoized entry across the four maps —
/// the unit of cache persistence ([`crate::snapshot`]) and of bulk
/// warm-start import. Entry order is unspecified (shard hashing is not
/// stable across processes); the snapshot codec canonicalizes it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheContents {
    /// PE synthesis outcomes (`None` = cannot close timing).
    pub records: Vec<(PeKey, Option<PeRecord>)>,
    /// Assembled engine prices (`None` = infeasible corner).
    pub prices: Vec<(PriceKey, Option<EnginePrice>)>,
    /// Serial-cycle evaluations.
    pub cycles: Vec<(CycleKey, SerialLayerRecord)>,
    /// Whole-model walks.
    pub models: Vec<(ModelKey, ModelRecord)>,
}

impl CacheContents {
    /// Total entries across the four maps.
    pub fn len(&self) -> usize {
        self.records.len() + self.prices.len() + self.cycles.len() + self.models.len()
    }

    /// Whether all four maps are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Sharded concurrent memoization of pricing and cycle outcomes.
///
/// `None` pricing values record corners where the design cannot close
/// timing, so infeasibility is cached too.
#[derive(Debug)]
pub struct EngineCache {
    records: [RwLock<HashMap<PeKey, Option<PeRecord>>>; SHARDS],
    prices: [RwLock<HashMap<PriceKey, Option<EnginePrice>>>; SHARDS],
    cycles: [RwLock<HashMap<CycleKey, SerialLayerRecord>>; SHARDS],
    models: [RwLock<HashMap<ModelKey, ModelRecord>>; SHARDS],
    price_hits: AtomicU64,
    price_misses: AtomicU64,
    cycle_hits: AtomicU64,
    cycle_misses: AtomicU64,
    price_lookups: AtomicU64,
    cycle_lookups: AtomicU64,
    model_hits: AtomicU64,
    model_misses: AtomicU64,
    model_lookups: AtomicU64,
    /// Counter levels at the last [`Self::window_delta`] call — the
    /// observation window the serve `stats` op reports per-window rates
    /// over.
    last_window: Mutex<CacheStats>,
}

impl Default for EngineCache {
    fn default() -> Self {
        Self {
            records: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            prices: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            cycles: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            models: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            price_hits: AtomicU64::new(0),
            price_misses: AtomicU64::new(0),
            cycle_hits: AtomicU64::new(0),
            cycle_misses: AtomicU64::new(0),
            price_lookups: AtomicU64::new(0),
            cycle_lookups: AtomicU64::new(0),
            model_hits: AtomicU64::new(0),
            model_misses: AtomicU64::new(0),
            model_lookups: AtomicU64::new(0),
            last_window: Mutex::new(CacheStats::default()),
        }
    }
}

fn shard_of(key: &impl Hash) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % SHARDS
}

impl EngineCache {
    /// An empty, isolated cache (tests and honest cold-timing runs).
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide instance every default evaluation path shares.
    pub fn global() -> &'static EngineCache {
        static GLOBAL: OnceLock<EngineCache> = OnceLock::new();
        GLOBAL.get_or_init(EngineCache::new)
    }

    /// Returns the pricing record for `key`, running `price` on a miss.
    ///
    /// The computation runs outside any lock; when two threads race on the
    /// same cold key both may price, and the first insert wins — pricing
    /// is deterministic, so the outcome is identical either way and
    /// readers never block on synthesis.
    pub fn pe_record(
        &self,
        key: PeKey,
        price: impl FnOnce() -> Option<PeRecord>,
    ) -> Option<PeRecord> {
        let shard = &self.records[shard_of(&key)];
        self.price_lookups.fetch_add(1, Ordering::Relaxed);
        if let Some(rec) = shard.read().expect("cache poisoned").get(&key) {
            self.price_hits.fetch_add(1, Ordering::Relaxed);
            return *rec;
        }
        self.price_misses.fetch_add(1, Ordering::Relaxed);
        let rec = price();
        *shard
            .write()
            .expect("cache poisoned")
            .entry(key)
            .or_insert(rec)
    }

    /// Returns the assembled engine price for `key`, running `assemble` on
    /// a miss.
    ///
    /// This is a derived layer over [`Self::pe_record`]: hits count as
    /// `price_hits`, while a miss delegates to `assemble` (which consults
    /// `pe_record` and does the counting there) — so the hit/miss totals
    /// read exactly as if only the synthesis map existed, just with the
    /// support-logic and peak-throughput assembly memoized too.
    pub fn engine_price(
        &self,
        key: PriceKey,
        assemble: impl FnOnce() -> Option<EnginePrice>,
    ) -> Option<EnginePrice> {
        let shard = &self.prices[shard_of(&key)];
        if let Some(price) = shard.read().expect("cache poisoned").get(&key) {
            // A derived-layer hit is one accounted lookup; a miss counts
            // nothing here — `assemble` consults `pe_record`, which does
            // the lookup *and* hit/miss accounting, keeping the
            // hits+misses == lookups invariant exact.
            self.price_lookups.fetch_add(1, Ordering::Relaxed);
            self.price_hits.fetch_add(1, Ordering::Relaxed);
            return *price;
        }
        let price = assemble();
        *shard
            .write()
            .expect("cache poisoned")
            .entry(key)
            .or_insert(price)
    }

    /// Returns the serial-cycle record for `key`, running `sample` on a
    /// miss. Same race discipline as [`Self::pe_record`].
    pub fn serial_record(
        &self,
        key: CycleKey,
        sample: impl FnOnce() -> SerialLayerRecord,
    ) -> SerialLayerRecord {
        let shard = &self.cycles[shard_of(&key)];
        self.cycle_lookups.fetch_add(1, Ordering::Relaxed);
        if let Some(rec) = shard.read().expect("cache poisoned").get(&key) {
            self.cycle_hits.fetch_add(1, Ordering::Relaxed);
            return *rec;
        }
        self.cycle_misses.fetch_add(1, Ordering::Relaxed);
        let rec = sample();
        *shard
            .write()
            .expect("cache poisoned")
            .entry(key)
            .or_insert(rec)
    }

    /// Returns the whole-model record for `key`, running `assemble` (the
    /// full per-layer walk) on a miss. Same race discipline as
    /// [`Self::pe_record`]; the returned record is a cheap clone (`Arc`
    /// bumps and plain copies).
    ///
    /// Accounting note: a miss's `assemble` closure consults the price
    /// and cycle maps internally — those lookups keep counting in their
    /// own families, so on a model-map *hit* the per-layer cycle counters
    /// no longer move at all (the whole point of the map).
    pub fn model_record(
        &self,
        key: ModelKey,
        assemble: impl FnOnce() -> ModelRecord,
    ) -> ModelRecord {
        let shard = &self.models[shard_of(&key)];
        self.model_lookups.fetch_add(1, Ordering::Relaxed);
        if let Some(rec) = shard.read().expect("cache poisoned").get(&key) {
            self.model_hits.fetch_add(1, Ordering::Relaxed);
            return rec.clone();
        }
        self.model_misses.fetch_add(1, Ordering::Relaxed);
        let rec = assemble();
        shard
            .write()
            .expect("cache poisoned")
            .entry(key)
            .or_insert(rec)
            .clone()
    }

    /// Counters at this instant.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            price_hits: self.price_hits.load(Ordering::Relaxed),
            price_misses: self.price_misses.load(Ordering::Relaxed),
            cycle_hits: self.cycle_hits.load(Ordering::Relaxed),
            cycle_misses: self.cycle_misses.load(Ordering::Relaxed),
            price_lookups: self.price_lookups.load(Ordering::Relaxed),
            cycle_lookups: self.cycle_lookups.load(Ordering::Relaxed),
            model_hits: self.model_hits.load(Ordering::Relaxed),
            model_misses: self.model_misses.load(Ordering::Relaxed),
            model_lookups: self.model_lookups.load(Ordering::Relaxed),
        }
    }

    /// Counter deltas since the previous `window_delta` call (the full
    /// totals on the first), then resets the window — so a long-running
    /// server polling this sees per-window rates rather than
    /// ever-growing totals. The window is advanced under a mutex, so
    /// concurrent pollers each get a disjoint slice of the counters.
    pub fn window_delta(&self) -> CacheStats {
        let mut last = self.last_window.lock().expect("cache window poisoned");
        let now = self.stats();
        let delta = now.since(&last);
        *last = now;
        delta
    }

    /// Copies every memoized entry out of the four maps. Only memoized
    /// *values* are exported — hit/miss counters describe this process's
    /// history, not the cache contents, so they stay behind.
    pub fn export(&self) -> CacheContents {
        let mut out = CacheContents::default();
        for shard in &self.records {
            let map = shard.read().expect("cache poisoned");
            out.records.extend(map.iter().map(|(k, v)| (*k, *v)));
        }
        for shard in &self.prices {
            let map = shard.read().expect("cache poisoned");
            out.prices.extend(map.iter().map(|(k, v)| (*k, *v)));
        }
        for shard in &self.cycles {
            let map = shard.read().expect("cache poisoned");
            out.cycles.extend(map.iter().map(|(k, v)| (*k, *v)));
        }
        for shard in &self.models {
            let map = shard.read().expect("cache poisoned");
            out.models
                .extend(map.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out
    }

    /// Bulk-inserts exported entries (a warm-start import). First insert
    /// wins, exactly like the per-lookup race discipline — a concurrently
    /// computed value is identical by determinism, so imports can never
    /// change results. Counters are untouched: imported entries surface
    /// as *hits* on their first lookup, which is what makes a
    /// warm-from-snapshot replay read ≈100% hit rate.
    pub fn import(&self, contents: CacheContents) {
        for (key, rec) in contents.records {
            self.records[shard_of(&key)]
                .write()
                .expect("cache poisoned")
                .entry(key)
                .or_insert(rec);
        }
        for (key, price) in contents.prices {
            self.prices[shard_of(&key)]
                .write()
                .expect("cache poisoned")
                .entry(key)
                .or_insert(price);
        }
        for (key, rec) in contents.cycles {
            self.cycles[shard_of(&key)]
                .write()
                .expect("cache poisoned")
                .entry(key)
                .or_insert(rec);
        }
        for (key, rec) in contents.models {
            self.models[shard_of(&key)]
                .write()
                .expect("cache poisoned")
                .entry(key)
                .or_insert(rec);
        }
    }

    /// Number of distinct PE/corner pairs priced.
    pub fn priced_len(&self) -> usize {
        self.records
            .iter()
            .map(|s| s.read().expect("cache poisoned").len())
            .sum()
    }

    /// Number of distinct assembled engine prices memoized (the derived
    /// map over the synthesis records).
    pub fn prices_len(&self) -> usize {
        self.prices
            .iter()
            .map(|s| s.read().expect("cache poisoned").len())
            .sum()
    }

    /// Number of distinct serial-cycle evaluations memoized.
    pub fn cycles_len(&self) -> usize {
        self.cycles
            .iter()
            .map(|s| s.read().expect("cache poisoned").len())
            .sum()
    }

    /// Number of distinct whole-model reports memoized.
    pub fn models_len(&self) -> usize {
        self.models
            .iter()
            .map(|s| s.read().expect("cache poisoned").len())
            .sum()
    }

    /// Total entries across all four maps (what a snapshot would carry).
    pub fn entry_count(&self) -> usize {
        self.priced_len() + self.prices_len() + self.cycles_len() + self.models_len()
    }

    /// Whether nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.entry_count() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(freq_mhz: u32) -> PeKey {
        PeKey {
            style: PeStyle::Opt1,
            dense: Some(ClassicArch::Tpu),
            in_pe_encoding: None,
            precision: Precision::W8,
            freq_mhz,
            node_dnm: 280,
        }
    }

    fn record() -> PeRecord {
        PeRecord {
            area_um2: 1.0,
            active_power_uw: 2.0,
            idle_power_uw: 0.1,
            lanes: 1,
        }
    }

    #[test]
    fn second_lookup_hits() {
        let cache = EngineCache::new();
        let mut priced = 0;
        for _ in 0..3 {
            cache.pe_record(key(1500), || {
                priced += 1;
                Some(record())
            });
        }
        assert_eq!(priced, 1);
        let stats = cache.stats();
        assert_eq!((stats.price_hits, stats.price_misses), (2, 1));
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cache.priced_len(), 1);
        assert_eq!(stats.lookups(), stats.hits() + stats.misses());
    }

    #[test]
    fn infeasible_outcomes_are_cached() {
        let cache = EngineCache::new();
        assert_eq!(cache.pe_record(key(9000), || None), None);
        assert_eq!(
            cache.pe_record(key(9000), || panic!("must not re-price")),
            None
        );
        assert_eq!(cache.stats().price_hits, 1);
    }

    #[test]
    fn distinct_corners_miss() {
        let cache = EngineCache::new();
        cache.pe_record(key(1000), || None);
        cache.pe_record(key(1500), || None);
        assert_eq!(cache.stats().price_misses, 2);
        assert_eq!(cache.priced_len(), 2);
    }

    #[test]
    fn cycle_records_memoize_and_key_on_raw_encoding() {
        let cache = EngineCache::new();
        let spec = EngineSpec::serial(PeStyle::Opt3, EncodingKind::EnT, 2.0);
        let layer = LayerShape::new("t", 8, 8, 64, 1);
        let k = CycleKey::of(&spec, &layer, 7, crate::caps::SampleProfile::Quick.caps());
        let rec = SerialLayerRecord {
            cycles: 10.0,
            busy_sum: 9.0,
            busy_min: 0.2,
            busy_max: 0.9,
            rounds: 1.0,
            columns: 32,
        };
        assert_eq!(cache.serial_record(k, || rec), rec);
        assert_eq!(cache.serial_record(k, || panic!("must hit")), rec);
        // CSD prices like EN-T but streams different digits: the cycle key
        // must distinguish what the price key canonicalizes together.
        let csd = EngineSpec::serial(PeStyle::Opt3, EncodingKind::Csd, 2.0);
        let kc = CycleKey::of(&csd, &layer, 7, crate::caps::SampleProfile::Quick.caps());
        assert_ne!(k, kc);
        assert_eq!(
            canonical_encoding(EncodingKind::Csd),
            canonical_encoding(EncodingKind::EnT)
        );
        let stats = cache.stats();
        assert_eq!((stats.cycle_hits, stats.cycle_misses), (1, 1));
        assert_eq!(cache.cycles_len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn stats_deltas_subtract_fieldwise() {
        let cache = EngineCache::new();
        cache.pe_record(key(1000), || Some(record()));
        let before = cache.stats();
        cache.pe_record(key(1000), || unreachable!());
        cache.pe_record(key(2000), || None);
        let delta = cache.stats().since(&before);
        assert_eq!((delta.price_hits, delta.price_misses), (1, 1));
        assert_eq!(delta.hits() + delta.misses(), 2);
        assert_eq!(delta.lookups(), 2, "deltas keep the lookup invariant");
    }

    #[test]
    fn window_delta_advances_and_resets() {
        let cache = EngineCache::new();
        cache.pe_record(key(1000), || Some(record()));
        cache.pe_record(key(1000), || unreachable!());
        let w1 = cache.window_delta();
        assert_eq!((w1.price_hits, w1.price_misses), (1, 1));
        let w2 = cache.window_delta();
        assert_eq!(w2, CacheStats::default(), "nothing between polls");
        cache.pe_record(key(1000), || unreachable!());
        let w3 = cache.window_delta();
        assert_eq!((w3.price_hits, w3.price_misses), (1, 0));
        assert_eq!(w3.lookups(), 1, "window keeps the lookup invariant");
    }

    /// The derived price layer keeps the accounting invariant: every
    /// `engine_price` call lands exactly one accounted lookup and one
    /// hit-or-miss, whether it hits its own map, delegates to `pe_record`,
    /// or finds the synthesis already cached under a sibling price key.
    #[test]
    fn lookup_counters_match_hits_plus_misses_through_the_derived_layer() {
        let cache = EngineCache::new();
        let price_key = |f| crate::cache::PriceKey {
            style: PeStyle::Opt1,
            dense: Some(ClassicArch::Tpu),
            encoding: EncodingKind::Mbe,
            precision: Precision::W8,
            freq_mhz: f,
            node_dnm: 280,
            sram_kib: 0,
            sram_bw: 0,
            dram_bw: 0,
        };
        let assemble = |cache: &EngineCache, f| {
            cache.pe_record(key(f), || Some(record()));
            None
        };
        cache.engine_price(price_key(1000), || assemble(&cache, 1000)); // cold
        cache.engine_price(price_key(1000), || unreachable!()); // price hit
        cache.engine_price(price_key(1500), || assemble(&cache, 1500)); // cold again
        cache.serial_record(
            CycleKey::of(
                &EngineSpec::serial(PeStyle::Opt3, EncodingKind::EnT, 2.0),
                &LayerShape::new("t", 8, 8, 64, 1),
                7,
                crate::caps::SampleProfile::Quick.caps(),
            ),
            || SerialLayerRecord {
                cycles: 1.0,
                busy_sum: 1.0,
                busy_min: 1.0,
                busy_max: 1.0,
                rounds: 1.0,
                columns: 1,
            },
        );
        let stats = cache.stats();
        assert_eq!(stats.lookups(), stats.hits() + stats.misses());
        assert_eq!(stats.price_lookups, stats.price_hits + stats.price_misses);
        assert_eq!(stats.cycle_lookups, stats.cycle_hits + stats.cycle_misses);
    }

    fn model_fixture() -> ModelRecord {
        ModelRecord {
            model: "toy".into(),
            layers: vec![LayerReport {
                name: "fc1".into(),
                macs: 64,
                tiles: 1.0,
                cycles: 10.0,
                delay_us: 0.005,
                utilization: 0.5,
                energy_uj: 0.25,
                bytes_moved: 192.0,
                intensity_ops_per_byte: 2.0 * 64.0 / 192.0,
                bound: Bound::Compute,
            }]
            .into(),
            total_macs: 64,
            cycles: 10.0,
            delay_us: 0.005,
            energy_uj: 0.25,
            utilization: 0.5,
            area_um2: 1.0e6,
            peak_tops: 2.0,
            bytes_moved: 192.0,
            intensity_ops_per_byte: 2.0 * 64.0 / 192.0,
            bound: Bound::Compute,
            busy_sum: 9.0,
        }
    }

    #[test]
    fn model_records_memoize_and_keep_the_lookup_invariant() {
        let cache = EngineCache::new();
        let spec = EngineSpec::serial(PeStyle::Opt4E, EncodingKind::EnT, 2.0);
        let net = tpe_workloads::models::resnet18();
        let caps = crate::caps::SampleProfile::Model.caps();
        let k = ModelKey::of(&spec, &net, 42, caps);
        let rec = model_fixture();
        let before = cache.stats();
        assert_eq!(cache.model_record(k.clone(), || rec.clone()), rec);
        assert_eq!(cache.model_record(k.clone(), || panic!("must hit")), rec);
        let stats = cache.stats();
        assert_eq!((stats.model_hits, stats.model_misses), (1, 1));
        assert_eq!(stats.model_lookups, stats.model_hits + stats.model_misses);
        assert_eq!(stats.lookups(), stats.hits() + stats.misses());
        assert_eq!(cache.models_len(), 1);
        assert_eq!(cache.entry_count(), 1, "entry_count covers the model map");
        let delta = stats.since(&before);
        assert_eq!((delta.model_hits, delta.model_misses), (1, 1));
        assert_eq!(delta.lookups(), 2, "deltas carry the model family");
    }

    /// The key must separate identity from content: a layer edit under the
    /// same network name misses, while analytic caps canonicalize the seed
    /// and budgets so every analytic query shares one entry.
    #[test]
    fn model_keys_hash_content_and_canonicalize_analytic_seeds() {
        let spec = EngineSpec::serial(PeStyle::Opt4E, EncodingKind::EnT, 2.0);
        let net = tpe_workloads::models::resnet18();
        let caps = crate::caps::SampleProfile::Model.caps();
        let k = ModelKey::of(&spec, &net, 42, caps);
        let mut edited = net.clone();
        edited.layers[0].k += 1;
        assert_ne!(k, ModelKey::of(&spec, &edited, 42, caps));
        let mut requantized = net.clone();
        requantized.layers[0].precision = Some(Precision::W4);
        assert_ne!(k, ModelKey::of(&spec, &requantized, 42, caps));
        assert_ne!(k, ModelKey::of(&spec, &net, 43, caps), "sampled seeds key");
        let analytic = SerialSampleCaps {
            model: CycleModel::Analytic,
            ..caps
        };
        assert_eq!(
            ModelKey::of(&spec, &net, 1, analytic),
            ModelKey::of(&spec, &net, 2, analytic),
            "analytic mode is seed-free"
        );
    }

    /// Memory corners are part of the price and model identities: the
    /// roofline changes per-layer delays, so an `edge` evaluation must
    /// never alias the unbounded one (PeKey and CycleKey stay
    /// memory-free — synthesis and sampling never see the corner).
    #[test]
    fn memory_corner_is_part_of_price_and_model_keys() {
        let spec = EngineSpec::serial(PeStyle::Opt4E, EncodingKind::EnT, 2.0);
        let edge = spec.clone().with_memory(crate::spec::MemorySpec::edge());
        assert_ne!(PriceKey::of(&spec), PriceKey::of(&edge));
        let net = tpe_workloads::models::resnet18();
        let caps = crate::caps::SampleProfile::Model.caps();
        assert_ne!(
            ModelKey::of(&spec, &net, 42, caps),
            ModelKey::of(&edge, &net, 42, caps)
        );
        let layer = LayerShape::new("t", 8, 8, 64, 1);
        assert_eq!(PeKey::of(&spec), PeKey::of(&edge));
        assert_eq!(
            CycleKey::of(&spec, &layer, 7, caps),
            CycleKey::of(&edge, &layer, 7, caps),
            "the cycle model is memory-independent"
        );
    }

    #[test]
    fn model_records_survive_export_import() {
        let cache = EngineCache::new();
        let spec = EngineSpec::serial(PeStyle::Opt4E, EncodingKind::EnT, 2.0);
        let net = tpe_workloads::models::resnet18();
        let k = ModelKey::of(&spec, &net, 42, crate::caps::SampleProfile::Model.caps());
        let rec = model_fixture();
        cache.model_record(k.clone(), || rec.clone());
        let contents = cache.export();
        assert_eq!(contents.models.len(), 1);
        let fresh = EngineCache::new();
        fresh.import(contents);
        assert_eq!(fresh.models_len(), 1);
        assert_eq!(fresh.model_record(k, || panic!("import must hit")), rec);
    }

    /// The canonical map must mirror the hardware: encodings keyed together
    /// synthesize to bit-identical OPT3 PE reports (CSD prices as the EN-T
    /// recoder; both bit-serial kinds price as the zero-skip unit), while
    /// MBE's plain Booth recoder stays distinct.
    #[test]
    fn canonical_encodings_share_identical_recoder_hardware() {
        for (a, b) in [
            (EncodingKind::Csd, EncodingKind::EnT),
            (
                EncodingKind::BitSerialSignMagnitude,
                EncodingKind::BitSerialComplement,
            ),
        ] {
            assert_eq!(canonical_encoding(a), canonical_encoding(b));
            let ra = PeStyle::Opt3
                .design_with_encoding(a)
                .synthesize(2.0)
                .unwrap();
            let rb = PeStyle::Opt3
                .design_with_encoding(b)
                .synthesize(2.0)
                .unwrap();
            assert_eq!(ra.area_um2.to_bits(), rb.area_um2.to_bits());
            assert_eq!(
                ra.busy_power_uw().to_bits(),
                rb.busy_power_uw().to_bits(),
                "{a:?}/{b:?} must price identically to share a cache entry"
            );
        }
        assert_ne!(
            canonical_encoding(EncodingKind::Mbe),
            canonical_encoding(EncodingKind::EnT)
        );
    }
}
