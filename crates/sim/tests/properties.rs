//! Property tests for the simulators: exactness and conservation laws on
//! random shapes and data.

use proptest::prelude::*;
use tpe_arith::encode::EncodingKind;
use tpe_sim::array::{
    AdderTreeArray, CubeArray, DenseArray, Matrix2dArray, OsSystolicArray, SystolicArray,
};
use tpe_sim::pe_schemes::compare_schemes;
use tpe_sim::{BitsliceArray, BitsliceConfig};
use tpe_workloads::distributions::uniform_int8_matrix;
use tpe_workloads::matrix::matmul_i8;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Both systolic dataflows (WS and OS) and the other dense arrays are
    /// exact on random shapes.
    #[test]
    fn dense_arrays_exact(
        m in 1usize..14,
        n in 1usize..14,
        k in 1usize..20,
        seed in 0u64..500,
    ) {
        let a = uniform_int8_matrix(m, k, seed);
        let b = uniform_int8_matrix(k, n, seed + 1);
        let expect = matmul_i8(&a, &b);
        let engines: Vec<Box<dyn DenseArray>> = vec![
            Box::new(SystolicArray::new(4, 4)),
            Box::new(OsSystolicArray::new(4, 4)),
            Box::new(CubeArray::new(3, 3, 3)),
            Box::new(AdderTreeArray::new(4, 4)),
            Box::new(Matrix2dArray::new(4, 4)),
        ];
        for e in engines {
            let (c, stats) = e.simulate(&a, &b);
            prop_assert_eq!(&c, &expect, "{}", e.name());
            prop_assert_eq!(stats.macs, (m * n * k) as u64);
            prop_assert_eq!(stats.cycles, e.estimate_cycles(m, n, k), "{}", e.name());
        }
    }

    /// Every Figure 2 PE scheme is exact on random vectors, and the cycle
    /// hierarchy holds: interleaved ≤ serial, encoded ≤ bit-serial.
    #[test]
    fn pe_schemes_exact_and_ordered(
        k in 1usize..200,
        seed in 0u64..500,
    ) {
        let a: Vec<i8> = uniform_int8_matrix(1, k, seed).data().to_vec();
        let b: Vec<i8> = uniform_int8_matrix(1, k, seed + 1).data().to_vec();
        let results = compare_schemes(&a, &b);
        let val = results[0].1.value;
        for (name, r) in &results {
            prop_assert_eq!(r.value, val, "{}", name);
        }
        let get = |tag: &str| results.iter().find(|(n, _)| n.contains(tag)).unwrap().1;
        prop_assert!(get("2E").cycles <= get("2B").cycles, "encoding never hurts");
        prop_assert!(get("2F").cycles <= get("2E").cycles, "interleaving never hurts");
        prop_assert!(get("2C+").cycles <= get("2C)").cycles.max(get("2C+").cycles));
    }

    /// The bit-slice engine conserves work: the sum of per-column busy
    /// cycles equals processed digits, and cycles ≥ busy-max.
    #[test]
    fn bitslice_work_conservation(
        m in 1usize..12,
        k in 1usize..40,
        n in 1usize..12,
        kt in 1usize..16,
        seed in 0u64..200,
    ) {
        let a = uniform_int8_matrix(m, k, seed);
        let cfg = BitsliceConfig {
            mp: 4,
            np: 2,
            lanes_per_pe: 1,
            kt,
            encoding: EncodingKind::EnT,
        };
        let stats = BitsliceArray::new(cfg).cycle_stats(&a, n);
        prop_assert!(stats.cycles >= stats.busy_max());
        let n_passes = n.div_ceil(cfg.n_per_pass()) as u64;
        // Total digits in A × passes = total busy.
        let enc = EncodingKind::EnT.encoder();
        let digits: u64 = a.iter().map(|&v| enc.num_pps(i64::from(v), 8) as u64).sum();
        let busy: u64 = stats.busy_per_column.iter().sum();
        prop_assert_eq!(busy, digits * n_passes);
    }

    /// Sync granularity only ever helps when coarsened: cycles(kt = ∞) ≤
    /// cycles(kt) for any kt.
    #[test]
    fn coarser_sync_never_slower(
        k in 2usize..60,
        kt in 1usize..8,
        seed in 0u64..200,
    ) {
        let a = uniform_int8_matrix(8, k, seed);
        let fine = BitsliceConfig {
            mp: 8, np: 2, lanes_per_pe: 1, kt, encoding: EncodingKind::EnT,
        };
        let coarse = BitsliceConfig { kt: usize::MAX, ..fine };
        let cf = BitsliceArray::new(fine).cycle_stats(&a, 2);
        let cc = BitsliceArray::new(coarse).cycle_stats(&a, 2);
        prop_assert!(cc.cycles <= cf.cycles);
    }
}
