//! Simulation statistics shared by all array simulators.

/// Cycle and activity statistics from one simulated GEMM.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimStats {
    /// Total cycles from first input to last output (including pipeline
    /// fill/drain and synchronization stalls).
    pub cycles: u64,
    /// Multiply–accumulate operations performed (one per a×b pair).
    pub macs: u64,
    /// Non-zero partial products processed (= busy cycles for serial PEs;
    /// for parallel MACs this tracks switching activity).
    pub partial_products: u64,
    /// Per-column (or per-PE-group) busy cycles, for utilization analysis.
    pub busy_per_column: Vec<u64>,
    /// Number of `sync` barriers executed (bit-slice arrays only).
    pub sync_events: u64,
    /// Number of processing lanes the busy counters refer to.
    pub lanes: u64,
}

impl SimStats {
    /// Busy cycles of the slowest column ("Busy-Max Column PEs" in Fig. 11).
    pub fn busy_max(&self) -> u64 {
        self.busy_per_column.iter().copied().max().unwrap_or(0)
    }

    /// Busy cycles of the fastest column ("Busy-Min Column PEs").
    pub fn busy_min(&self) -> u64 {
        self.busy_per_column.iter().copied().min().unwrap_or(0)
    }

    /// Average busy fraction across columns — the PE-array utilization the
    /// paper reports (96–98% for GPT-2, 92–98% for MobileNetV3).
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 || self.busy_per_column.is_empty() {
            return 0.0;
        }
        let total: u64 = self.busy_per_column.iter().sum();
        total as f64 / (self.cycles as f64 * self.busy_per_column.len() as f64)
    }

    /// Idle fraction (1 − utilization): the "bubbles" of §VI.
    pub fn idle_ratio(&self) -> f64 {
        1.0 - self.utilization()
    }

    /// Average non-zero partial products per MAC — the workload's effective
    /// NumPPs as seen by the hardware.
    pub fn avg_pps_per_mac(&self) -> f64 {
        if self.macs == 0 {
            0.0
        } else {
            self.partial_products as f64 / self.macs as f64
        }
    }

    /// Merges another run's statistics (layers of a network, tiles of a
    /// larger GEMM) sequentially.
    pub fn merge(&mut self, other: &SimStats) {
        self.cycles += other.cycles;
        self.macs += other.macs;
        self.partial_products += other.partial_products;
        self.sync_events += other.sync_events;
        if self.busy_per_column.len() < other.busy_per_column.len() {
            self.busy_per_column.resize(other.busy_per_column.len(), 0);
        }
        for (a, b) in self.busy_per_column.iter_mut().zip(&other.busy_per_column) {
            *a += *b;
        }
        self.lanes = self.lanes.max(other.lanes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_of_uniform_busy() {
        let s = SimStats {
            cycles: 100,
            busy_per_column: vec![90, 90, 90, 90],
            ..Default::default()
        };
        assert!((s.utilization() - 0.9).abs() < 1e-12);
        assert!((s.idle_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn busy_min_max() {
        let s = SimStats {
            cycles: 10,
            busy_per_column: vec![3, 9, 6],
            ..Default::default()
        };
        assert_eq!(s.busy_max(), 9);
        assert_eq!(s.busy_min(), 3);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SimStats {
            cycles: 10,
            macs: 5,
            partial_products: 12,
            busy_per_column: vec![1, 2],
            sync_events: 1,
            lanes: 2,
        };
        let b = SimStats {
            cycles: 7,
            macs: 3,
            partial_products: 8,
            busy_per_column: vec![4, 4, 4],
            sync_events: 2,
            lanes: 3,
        };
        a.merge(&b);
        assert_eq!(a.cycles, 17);
        assert_eq!(a.macs, 8);
        assert_eq!(a.busy_per_column, vec![5, 6, 4]);
        assert_eq!(a.sync_events, 3);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = SimStats::default();
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.busy_max(), 0);
        assert_eq!(s.avg_pps_per_mac(), 0.0);
    }
}
