#![warn(missing_docs)]

//! # tpe-sim
//!
//! Cycle-level simulators for tensor-processing-engine arrays.
//!
//! Two simulation styles cover the paper's evaluation:
//!
//! * **Dense arrays** ([`mod@array`]) — the four classic TPE topologies the
//!   paper retrofits with OPT1/OPT2: weight-stationary systolic (TPU-like),
//!   3D-Cube (Ascend-like), multiplier–adder-tree (Trapezoid-like) and
//!   broadcast 2D-Matrix (FlexFlow-like). The systolic array is simulated
//!   cycle-accurately (skewed wavefront, register movement); the others are
//!   functionally exact with validated closed-form cycle models.
//! * **Column-synchronous bit-slice engine** ([`bitslice`]) — the substrate
//!   of OPT3/OPT4C/OPT4E: each column shares a multiplicand stream, spends
//!   one cycle per non-zero encoded digit, and synchronizes with the other
//!   columns every `KT` operands (the `sync` primitive). Cycle counts are
//!   exact; results are bit-exact against the reference GEMM.
//!
//! Every simulator returns both the product matrix and a [`stats::SimStats`]
//! that downstream crates combine with `tpe-cost` to price delay and energy.

pub mod array;
pub mod bitslice;
pub mod memory;
pub mod pe_schemes;
pub mod stats;

pub use bitslice::{BitsliceArray, BitsliceConfig};
pub use stats::SimStats;
