//! Banked SRAM layout for asynchronous column access (§IV-C).
//!
//! Because OPT3's columns progress at different speeds, naive `M K` layout
//! would let two columns hit the same bank in the same cycle. The paper
//! switches the layout of `A` from `M K` to `K1 MT K2 MP` (and `B` from
//! `K N` to `K1 NT K2 NP`) so that "the elements of A with the same index
//! in K1 are stored in the same bank, and the index difference between two
//! adjacent banks will be dk" — a diagonal skew that gives each column a
//! private bank at every aligned step.
//!
//! This same bank geometry sets the on-chip bandwidth of `tpe-engine`'s
//! named memory corners: a `MemorySpec` built by `MemorySpec::banked`
//! sustains `banks × SRAM_PORT_BYTES` bytes per cycle precisely because
//! each skewed bank serves one port-width access per cycle conflict-free
//! (pinned by `memory_corners_tie_to_bank_geometry` over there).

/// A diagonally skewed bank mapping over `banks` SRAM banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkewedBankLayout {
    banks: usize,
}

impl SkewedBankLayout {
    /// Creates the layout; `banks` normally equals the column count MP.
    pub fn new(banks: usize) -> Self {
        assert!(banks > 0);
        Self { banks }
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// The bank that holds column `column`'s `ordinal`-th operand along the
    /// reduction: the diagonal skew `(ordinal + column) mod banks`.
    pub fn bank_for(&self, column: usize, ordinal: usize) -> usize {
        (ordinal + column) % self.banks
    }

    /// Checks a set of simultaneous accesses `(column, ordinal)` for bank
    /// conflicts; returns the number of conflicting pairs.
    pub fn conflicts(&self, accesses: &[(usize, usize)]) -> usize {
        let mut hits = vec![0usize; self.banks];
        for &(c, o) in accesses {
            hits[self.bank_for(c, o)] += 1;
        }
        hits.iter().filter(|&&h| h > 1).map(|&h| h - 1).sum()
    }
}

/// Tracks B-operand prefetches driven by non-zero digit indices (OPT4's
/// "memory can recognize the sparsity of encoded operand A and prefetch
/// operand B by non-zero indices").
#[derive(Debug, Clone, Default)]
pub struct PrefetchStats {
    /// Operands fetched (= non-zero digits encountered).
    pub fetched: u64,
    /// Operands skipped because every digit was zero.
    pub skipped: u64,
}

impl PrefetchStats {
    /// Records one operand with `nonzero_digits` non-zero digits.
    pub fn record(&mut self, nonzero_digits: usize) {
        if nonzero_digits == 0 {
            self.skipped += 1;
        } else {
            self.fetched += 1;
        }
    }

    /// Fraction of operand fetches avoided.
    pub fn skip_ratio(&self) -> f64 {
        let total = self.fetched + self.skipped;
        if total == 0 {
            0.0
        } else {
            self.skipped as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's conflict-freedom claim: when all columns sit at the same
    /// ordinal (sync-aligned), every column reads a distinct bank.
    #[test]
    fn aligned_access_is_conflict_free() {
        let layout = SkewedBankLayout::new(32);
        for step in [0usize, 1, 5, 100, 575] {
            let accesses: Vec<(usize, usize)> = (0..32).map(|c| (c, step)).collect();
            assert_eq!(layout.conflicts(&accesses), 0, "step {step}");
        }
    }

    /// Columns drifted by distinct offsets also stay conflict-free as long
    /// as (offset + column) stays distinct mod banks — the dk-skew works
    /// for bounded drift.
    #[test]
    fn uniform_drift_stays_conflict_free() {
        let layout = SkewedBankLayout::new(8);
        // All columns at the same ordinal plus a *common* drift d.
        for d in 0..20 {
            let accesses: Vec<(usize, usize)> = (0..8).map(|c| (c, 42 + d)).collect();
            assert_eq!(layout.conflicts(&accesses), 0);
        }
    }

    /// A pathological drift pattern *can* collide — which is exactly why
    /// the paper bounds drift with the `sync` barrier every KT operands.
    #[test]
    fn unbounded_drift_can_conflict() {
        let layout = SkewedBankLayout::new(4);
        // Column 0 raced one full bank-cycle ahead of column 1.
        let accesses = vec![(0usize, 5usize), (1, 4), (2, 2), (3, 1)];
        assert!(layout.conflicts(&accesses) > 0);
    }

    #[test]
    fn prefetch_skip_ratio() {
        let mut p = PrefetchStats::default();
        p.record(2);
        p.record(0);
        p.record(3);
        p.record(0);
        assert_eq!(p.fetched, 2);
        assert!((p.skip_ratio() - 0.5).abs() < 1e-12);
    }
}
