//! Multiplier–adder-tree array (Trapezoid-like): `units` independent
//! dot-product engines, each with `lanes` multipliers feeding a binary
//! adder tree.

use super::DenseArray;
use crate::stats::SimStats;
use tpe_workloads::Matrix;

/// `units` dot-product units of `lanes` multipliers each.
#[derive(Debug, Clone, Copy)]
pub struct AdderTreeArray {
    units: usize,
    lanes: usize,
}

impl AdderTreeArray {
    /// Creates the array (Table VII uses 32 units × 32 lanes = 1024 PEs).
    pub fn new(units: usize, lanes: usize) -> Self {
        assert!(units > 0 && lanes > 0);
        Self { units, lanes }
    }

    fn tree_depth(&self) -> u64 {
        (usize::BITS - (self.lanes - 1).leading_zeros()) as u64
    }
}

impl DenseArray for AdderTreeArray {
    fn name(&self) -> &'static str {
        "Trapezoid(adder-tree)"
    }

    fn pe_count(&self) -> usize {
        self.units * self.lanes
    }

    fn simulate(&self, a: &Matrix<i8>, b: &Matrix<i8>) -> (Matrix<i32>, SimStats) {
        assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
        let (m, n, k) = (a.rows(), b.cols(), a.cols());
        let mut out = Matrix::<i32>::zeros(m, n);
        // Each output element needs ⌈K / lanes⌉ unit-cycles; units work on
        // different output elements in parallel.
        let k_chunks = k.div_ceil(self.lanes);
        let mut unit_cycles = 0u64;
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i32;
                for x in 0..k {
                    acc += i32::from(a[(i, x)]) * i32::from(b[(x, j)]);
                }
                out[(i, j)] = acc;
                unit_cycles += k_chunks as u64;
            }
        }
        let cycles = unit_cycles.div_ceil(self.units as u64) + self.tree_depth();
        let macs = (m * n * k) as u64;
        let stats = SimStats {
            cycles,
            macs,
            partial_products: macs * 4,
            busy_per_column: vec![cycles - self.tree_depth(); self.units],
            sync_events: 0,
            lanes: self.pe_count() as u64,
        };
        (out, stats)
    }

    fn estimate_cycles(&self, m: usize, n: usize, k: usize) -> u64 {
        let unit_cycles = (m * n) as u64 * k.div_ceil(self.lanes) as u64;
        unit_cycles.div_ceil(self.units as u64) + self.tree_depth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpe_workloads::distributions::uniform_int8_matrix;
    use tpe_workloads::matrix::matmul_i8;

    #[test]
    fn exact_product() {
        let a = uniform_int8_matrix(6, 40, 70);
        let b = uniform_int8_matrix(40, 5, 71);
        let arr = AdderTreeArray::new(8, 16);
        let (c, _) = arr.simulate(&a, &b);
        assert_eq!(c, matmul_i8(&a, &b));
    }

    #[test]
    fn cycle_model_counts_chunks() {
        let arr = AdderTreeArray::new(2, 8);
        // 4 outputs × ⌈20/8⌉ = 12 unit-cycles over 2 units = 6, +3 drain.
        assert_eq!(arr.estimate_cycles(2, 2, 20), 6 + 3);
    }

    #[test]
    fn short_k_wastes_lanes() {
        // K = 4 on 32 lanes still costs one chunk — the under-utilization
        // dense trees suffer on shallow reductions.
        let arr = AdderTreeArray::new(32, 32);
        let c = arr.estimate_cycles(32, 32, 4);
        assert_eq!(c, 32 + 5);
    }
}
