//! 3D-Cube array (Ascend-like): an `MP × NP × KP` block of MACs computing
//! one GEMM sub-block per cycle, with `KP`-deep adder trees reducing the K
//! axis spatially.

use super::DenseArray;
use crate::stats::SimStats;
use tpe_workloads::Matrix;

/// An `MP × NP × KP` cube of multiply units with spatial K reduction.
#[derive(Debug, Clone, Copy)]
pub struct CubeArray {
    mp: usize,
    np: usize,
    kp: usize,
}

impl CubeArray {
    /// Creates the cube (the paper's Ascend configuration is 10×10×10).
    pub fn new(mp: usize, np: usize, kp: usize) -> Self {
        assert!(mp > 0 && np > 0 && kp > 0);
        Self { mp, np, kp }
    }

    /// Adder-tree pipeline depth for the spatial K reduction.
    fn tree_depth(&self) -> u64 {
        (usize::BITS - (self.kp - 1).leading_zeros()) as u64
    }
}

impl DenseArray for CubeArray {
    fn name(&self) -> &'static str {
        "Ascend(3D-Cube)"
    }

    fn pe_count(&self) -> usize {
        self.mp * self.np * self.kp
    }

    fn simulate(&self, a: &Matrix<i8>, b: &Matrix<i8>) -> (Matrix<i32>, SimStats) {
        assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
        let (m, n, k) = (a.rows(), b.cols(), a.cols());
        let mut out = Matrix::<i32>::zeros(m, n);
        let mut cycles = 0u64;
        // Each cycle the cube consumes an (mp × kp) × (kp × np) block.
        let mut m0 = 0;
        while m0 < m {
            let mm = (m - m0).min(self.mp);
            let mut n0 = 0;
            while n0 < n {
                let nn = (n - n0).min(self.np);
                let mut k0 = 0;
                while k0 < k {
                    let kk = (k - k0).min(self.kp);
                    for i in 0..mm {
                        for j in 0..nn {
                            let mut acc = 0i32;
                            for x in 0..kk {
                                acc +=
                                    i32::from(a[(m0 + i, k0 + x)]) * i32::from(b[(k0 + x, n0 + j)]);
                            }
                            out[(m0 + i, n0 + j)] += acc;
                        }
                    }
                    cycles += 1;
                    k0 += self.kp;
                }
                n0 += self.np;
            }
            m0 += self.mp;
        }
        cycles += self.tree_depth(); // drain the reduction pipeline
        let macs = (m * n * k) as u64;
        let stats = SimStats {
            cycles,
            macs,
            partial_products: macs * 4,
            busy_per_column: vec![cycles - self.tree_depth(); self.np],
            sync_events: 0,
            lanes: self.pe_count() as u64,
        };
        (out, stats)
    }

    fn estimate_cycles(&self, m: usize, n: usize, k: usize) -> u64 {
        (m.div_ceil(self.mp) * n.div_ceil(self.np) * k.div_ceil(self.kp)) as u64 + self.tree_depth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpe_workloads::distributions::uniform_int8_matrix;
    use tpe_workloads::matrix::matmul_i8;

    #[test]
    fn exact_with_ragged_tiles() {
        let a = uniform_int8_matrix(11, 23, 7);
        let b = uniform_int8_matrix(23, 13, 8);
        let cube = CubeArray::new(4, 4, 4);
        let (c, _) = cube.simulate(&a, &b);
        assert_eq!(c, matmul_i8(&a, &b));
    }

    #[test]
    fn one_block_per_cycle() {
        let cube = CubeArray::new(10, 10, 10);
        // A 10×10×10 GEMM is one cycle plus tree drain (⌈log2 10⌉ = 4).
        assert_eq!(cube.estimate_cycles(10, 10, 10), 1 + 4);
        assert_eq!(cube.estimate_cycles(20, 20, 20), 8 + 4);
    }

    #[test]
    fn cube_is_k_parallel() {
        // Doubling K adds blocks along the reduction axis only.
        let cube = CubeArray::new(10, 10, 10);
        let c1 = cube.estimate_cycles(10, 10, 100);
        let c2 = cube.estimate_cycles(10, 10, 200);
        assert_eq!(c2 - c1, 10);
    }
}
