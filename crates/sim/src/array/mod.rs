//! Dense TPE array topologies: the four classic architectures the paper
//! retrofits and compares against (Table VII, §II-B).
//!
//! * [`SystolicArray`] — weight-stationary systolic array (TPU-like,
//!   Jouppi et al.): weights pre-load column by column, activations skew
//!   through the wavefront. Simulated cycle-accurately, including the
//!   load/drain phases the Figure 11 baseline pays on every tile.
//! * [`CubeArray`] — 3D-Cube (Ascend-like): a 10×10×10 block of
//!   multipliers with a spatial K-reduction tree (`tree_depth` drain).
//! * [`AdderTreeArray`] — multiplier–adder-tree (Trapezoid-like): dot
//!   product units of 32 lanes, one output element per unit-round.
//! * [`OsSystolicArray`] / [`Matrix2dArray`] — output-stationary and
//!   broadcast 2D-Matrix (FlexFlow-like) organizations; the row/column
//!   operand broadcast is the property OPT2's same-bit-weight reduction
//!   exploits (§IV-B).
//!
//! Every engine implements [`DenseArray`]: an exact `simulate` (validated
//! against the reference GEMM) plus a closed-form `estimate_cycles`
//! pinned to simulation in tests — the cycle model `tpe-pipeline` uses to
//! schedule whole networks, layer by img2col-lowered layer.

mod adder_tree;
mod cube;
mod matrix2d;
mod os_systolic;
mod systolic;

pub use adder_tree::AdderTreeArray;
pub use cube::CubeArray;
pub use matrix2d::Matrix2dArray;
pub use os_systolic::OsSystolicArray;
pub use systolic::SystolicArray;

use crate::stats::SimStats;
use tpe_workloads::Matrix;

/// A dense GEMM engine: simulates `C = A·B` exactly and reports cycles.
pub trait DenseArray {
    /// Architecture name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Number of processing elements.
    fn pe_count(&self) -> usize;

    /// Simulates the full GEMM, returning the exact product and statistics.
    fn simulate(&self, a: &Matrix<i8>, b: &Matrix<i8>) -> (Matrix<i32>, SimStats);

    /// Closed-form cycle estimate for an `m × n × k` GEMM (validated
    /// against `simulate` in tests).
    fn estimate_cycles(&self, m: usize, n: usize, k: usize) -> u64;
}

/// The four classic architectures at the paper's Table VII configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassicArch {
    /// Weight-stationary systolic array (TPU).
    Tpu,
    /// 3D-Cube (Ascend), 10×10×10.
    Ascend,
    /// Multiplier–adder tree (Trapezoid).
    Trapezoid,
    /// Broadcast 2D-Matrix (FlexFlow).
    FlexFlow,
}

impl ClassicArch {
    /// All four, in Table VII order.
    pub const ALL: [ClassicArch; 4] = [
        ClassicArch::Tpu,
        ClassicArch::Ascend,
        ClassicArch::Trapezoid,
        ClassicArch::FlexFlow,
    ];

    /// Instantiates the architecture at its Table VII size (32×32 PEs;
    /// 10×10×10 for the Cube).
    pub fn at_paper_config(self) -> Box<dyn DenseArray> {
        match self {
            ClassicArch::Tpu => Box::new(SystolicArray::new(32, 32)),
            ClassicArch::Ascend => Box::new(CubeArray::new(10, 10, 10)),
            ClassicArch::Trapezoid => Box::new(AdderTreeArray::new(32, 32)),
            ClassicArch::FlexFlow => Box::new(Matrix2dArray::new(32, 32)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpe_workloads::distributions::uniform_int8_matrix;
    use tpe_workloads::matrix::matmul_i8;

    /// Every classic architecture computes the exact GEMM on shapes that
    /// exercise partial tiles.
    #[test]
    fn all_architectures_exact() {
        let a = uniform_int8_matrix(13, 17, 1);
        let b = uniform_int8_matrix(17, 11, 2);
        let expect = matmul_i8(&a, &b);
        for arch in ClassicArch::ALL {
            let engine = arch.at_paper_config();
            let (c, stats) = engine.simulate(&a, &b);
            assert_eq!(c, expect, "{} wrong result", engine.name());
            assert!(stats.cycles > 0);
            assert_eq!(stats.macs, 13 * 17 * 11);
        }
    }

    /// Closed-form estimates match simulation for every architecture.
    #[test]
    fn estimates_match_simulation() {
        let a = uniform_int8_matrix(9, 21, 3);
        let b = uniform_int8_matrix(21, 14, 4);
        for arch in ClassicArch::ALL {
            let engine = arch.at_paper_config();
            let (_, stats) = engine.simulate(&a, &b);
            assert_eq!(
                stats.cycles,
                engine.estimate_cycles(9, 14, 21),
                "{} estimate drift",
                engine.name()
            );
        }
    }

    #[test]
    fn pe_counts_match_paper_configs() {
        assert_eq!(ClassicArch::Tpu.at_paper_config().pe_count(), 1024);
        assert_eq!(ClassicArch::Ascend.at_paper_config().pe_count(), 1000);
        assert_eq!(ClassicArch::Trapezoid.at_paper_config().pe_count(), 1024);
        assert_eq!(ClassicArch::FlexFlow.at_paper_config().pe_count(), 1024);
    }
}
