//! Broadcast 2D-Matrix array (FlexFlow-like): an output-stationary
//! `MP × NP` grid where row `i` broadcasts `A[i][k]` and column `j`
//! broadcasts `B[k][j]` each cycle; every PE accumulates its own output
//! element locally.
//!
//! The row/column broadcast is what lets OPT2 share its wider input DFFs
//! across PEs — the paper's reason OPT2 pays off specifically on this
//! topology.

use super::DenseArray;
use crate::stats::SimStats;
use tpe_workloads::Matrix;

/// An output-stationary `MP × NP` broadcast grid.
#[derive(Debug, Clone, Copy)]
pub struct Matrix2dArray {
    mp: usize,
    np: usize,
}

impl Matrix2dArray {
    /// Creates the grid (Table VII: 32×32).
    pub fn new(mp: usize, np: usize) -> Self {
        assert!(mp > 0 && np > 0);
        Self { mp, np }
    }
}

impl DenseArray for Matrix2dArray {
    fn name(&self) -> &'static str {
        "FlexFlow(2D-Matrix)"
    }

    fn pe_count(&self) -> usize {
        self.mp * self.np
    }

    fn simulate(&self, a: &Matrix<i8>, b: &Matrix<i8>) -> (Matrix<i32>, SimStats) {
        assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
        let (m, n, k) = (a.rows(), b.cols(), a.cols());
        let mut out = Matrix::<i32>::zeros(m, n);
        let mut cycles = 0u64;
        let mut m0 = 0;
        while m0 < m {
            let mm = (m - m0).min(self.mp);
            let mut n0 = 0;
            while n0 < n {
                let nn = (n - n0).min(self.np);
                // K iterations, one broadcast pair per cycle, plus one
                // cycle to flush accumulators to the output bus.
                for x in 0..k {
                    for i in 0..mm {
                        let av = i32::from(a[(m0 + i, x)]);
                        for j in 0..nn {
                            out[(m0 + i, n0 + j)] += av * i32::from(b[(x, n0 + j)]);
                        }
                    }
                    cycles += 1;
                }
                cycles += 1;
                n0 += self.np;
            }
            m0 += self.mp;
        }
        let macs = (m * n * k) as u64;
        let stats = SimStats {
            cycles,
            macs,
            partial_products: macs * 4,
            busy_per_column: vec![cycles; self.np],
            sync_events: 0,
            lanes: self.pe_count() as u64,
        };
        (out, stats)
    }

    fn estimate_cycles(&self, m: usize, n: usize, k: usize) -> u64 {
        (m.div_ceil(self.mp) * n.div_ceil(self.np)) as u64 * (k as u64 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpe_workloads::distributions::uniform_int8_matrix;
    use tpe_workloads::matrix::matmul_i8;

    #[test]
    fn exact_product_with_tiling() {
        let a = uniform_int8_matrix(7, 12, 90);
        let b = uniform_int8_matrix(12, 9, 91);
        let arr = Matrix2dArray::new(4, 4);
        let (c, _) = arr.simulate(&a, &b);
        assert_eq!(c, matmul_i8(&a, &b));
    }

    #[test]
    fn k_dominates_cycles() {
        let arr = Matrix2dArray::new(32, 32);
        assert_eq!(arr.estimate_cycles(32, 32, 100), 101);
        assert_eq!(arr.estimate_cycles(64, 32, 100), 202);
    }
}
