//! Output-stationary systolic array: the OS dataflow variant the paper's
//! survey cites alongside weight-stationary ([13], [20], [21], [33]).
//!
//! Each PE owns one output element; `A` streams in from the left (skewed
//! by row) while `B` streams down from the top (skewed by column), and the
//! operands for `C[i][j]`'s k-th product meet at PE (i, j) at cycle
//! `k + i + j`. After the reduction the psums drain over the output bus.

use super::DenseArray;
use crate::stats::SimStats;
use tpe_workloads::Matrix;

/// An output-stationary `MP × NP` systolic array.
#[derive(Debug, Clone, Copy)]
pub struct OsSystolicArray {
    mp: usize,
    np: usize,
}

impl OsSystolicArray {
    /// Creates the array with `mp` rows (M) and `np` columns (N).
    pub fn new(mp: usize, np: usize) -> Self {
        assert!(mp > 0 && np > 0);
        Self { mp, np }
    }

    /// Cycle-accurate sweep of one `mm × nn` output tile over the full
    /// reduction; returns cycles spent.
    fn sweep_tile(
        &self,
        a: &Matrix<i8>,
        b: &Matrix<i8>,
        m0: usize,
        n0: usize,
        out: &mut Matrix<i32>,
    ) -> u64 {
        let k_dim = a.cols();
        let mm = (a.rows() - m0).min(self.mp);
        let nn = (b.cols() - n0).min(self.np);

        let mut a_reg = vec![vec![0i8; nn]; mm];
        let mut b_reg = vec![vec![0i8; nn]; mm];
        let mut psum = vec![vec![0i32; nn]; mm];
        // Operands for k meet at (i, j) at cycle k + i + j; the last pair
        // lands at k_dim − 1 + (mm − 1) + (nn − 1).
        let total = k_dim + mm + nn - 2 + 1;

        for t in 0..total {
            for i in (0..mm).rev() {
                for j in (0..nn).rev() {
                    let a_in = if j == 0 {
                        // Row i receives A[m0+i][t − i].
                        let k = t as isize - i as isize;
                        if k >= 0 && (k as usize) < k_dim {
                            a[(m0 + i, k as usize)]
                        } else {
                            0
                        }
                    } else {
                        a_reg[i][j - 1]
                    };
                    let b_in = if i == 0 {
                        // Column j receives B[t − j][n0+j].
                        let k = t as isize - j as isize;
                        if k >= 0 && (k as usize) < k_dim {
                            b[(k as usize, n0 + j)]
                        } else {
                            0
                        }
                    } else {
                        b_reg[i - 1][j]
                    };
                    psum[i][j] += i32::from(a_in) * i32::from(b_in);
                    a_reg[i][j] = a_in;
                    b_reg[i][j] = b_in;
                }
            }
        }
        for i in 0..mm {
            for j in 0..nn {
                out[(m0 + i, n0 + j)] = psum[i][j];
            }
        }
        // Drain: one column of outputs per cycle over the result bus.
        (total + nn) as u64
    }
}

impl DenseArray for OsSystolicArray {
    fn name(&self) -> &'static str {
        "Systolic-OS"
    }

    fn pe_count(&self) -> usize {
        self.mp * self.np
    }

    fn simulate(&self, a: &Matrix<i8>, b: &Matrix<i8>) -> (Matrix<i32>, SimStats) {
        assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
        let (m, n, k) = (a.rows(), b.cols(), a.cols());
        let mut out = Matrix::<i32>::zeros(m, n);
        let mut cycles = 0u64;
        let mut m0 = 0;
        while m0 < m {
            let mut n0 = 0;
            while n0 < n {
                cycles += self.sweep_tile(a, b, m0, n0, &mut out);
                n0 += self.np;
            }
            m0 += self.mp;
        }
        let macs = (m * n * k) as u64;
        let stats = SimStats {
            cycles,
            macs,
            partial_products: macs * 4,
            busy_per_column: vec![cycles; self.np],
            sync_events: 0,
            lanes: self.pe_count() as u64,
        };
        (out, stats)
    }

    fn estimate_cycles(&self, m: usize, n: usize, k: usize) -> u64 {
        let mut cycles = 0u64;
        let m_tiles = m.div_ceil(self.mp);
        let n_tiles = n.div_ceil(self.np);
        for mt in 0..m_tiles {
            let mm = (m - mt * self.mp).min(self.mp);
            for nt in 0..n_tiles {
                let nn = (n - nt * self.np).min(self.np);
                cycles += (k + mm + nn - 1 + nn) as u64;
            }
        }
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::SystolicArray;
    use tpe_workloads::distributions::uniform_int8_matrix;
    use tpe_workloads::matrix::matmul_i8;

    #[test]
    fn exact_on_square_tile() {
        let a = uniform_int8_matrix(8, 12, 60);
        let b = uniform_int8_matrix(12, 8, 61);
        let arr = OsSystolicArray::new(8, 8);
        let (c, _) = arr.simulate(&a, &b);
        assert_eq!(c, matmul_i8(&a, &b));
    }

    #[test]
    fn exact_with_ragged_tiles() {
        let a = uniform_int8_matrix(11, 7, 62);
        let b = uniform_int8_matrix(7, 13, 63);
        let arr = OsSystolicArray::new(4, 4);
        let (c, _) = arr.simulate(&a, &b);
        assert_eq!(c, matmul_i8(&a, &b));
    }

    #[test]
    fn estimate_matches_simulation() {
        let arr = OsSystolicArray::new(4, 8);
        for (m, n, k) in [(4, 8, 16), (5, 9, 7), (12, 4, 20)] {
            let a = uniform_int8_matrix(m, k, (m + n) as u64);
            let b = uniform_int8_matrix(k, n, (n + k) as u64);
            let (_, stats) = arr.simulate(&a, &b);
            assert_eq!(stats.cycles, arr.estimate_cycles(m, n, k), "{m}x{n}x{k}");
        }
    }

    /// OS amortizes the reduction: for deep K and one output tile it
    /// approaches one MAC per PE per cycle without reloading weights,
    /// beating WS when K ≫ tile size.
    #[test]
    fn os_beats_ws_on_deep_k() {
        let os = OsSystolicArray::new(32, 32);
        let ws = SystolicArray::new(32, 32);
        let (m, n, k) = (32, 32, 4096);
        assert!(os.estimate_cycles(m, n, k) < ws.estimate_cycles(m, n, k));
    }

    /// WS wins on shallow K with many output rows (weights loaded once,
    /// rows streamed) — the dataflow trade-off is workload-dependent.
    #[test]
    fn ws_beats_os_on_many_rows_shallow_k() {
        let os = OsSystolicArray::new(32, 32);
        let ws = SystolicArray::new(32, 32);
        let (m, n, k) = (4096, 32, 32);
        assert!(ws.estimate_cycles(m, n, k) < os.estimate_cycles(m, n, k));
    }
}
