//! Weight-stationary systolic array (TPU-like), simulated cycle-accurately.
//!
//! The array holds a `KP × NP` tile of `B` stationary. Rows of `A` stream
//! in from the left with one cycle of skew per array row; partial sums flow
//! downward, one full MAC per PE per cycle. An `M`-row sweep over one
//! weight tile takes `M + KP + NP − 1` cycles from first input to last
//! drained output; weight tiles load in `KP` cycles (double-buffered loads
//! are not modeled, as the paper's dense sweeps are compute-bound).

use super::DenseArray;
use crate::stats::SimStats;
use tpe_workloads::Matrix;

/// A weight-stationary `KP × NP` systolic array.
#[derive(Debug, Clone, Copy)]
pub struct SystolicArray {
    kp: usize,
    np: usize,
}

impl SystolicArray {
    /// Creates the array with `kp` rows (reduction) and `np` columns.
    pub fn new(kp: usize, np: usize) -> Self {
        assert!(kp > 0 && np > 0);
        Self { kp, np }
    }

    /// Cycle-accurately streams `M` rows of one `kp × np` weight tile.
    ///
    /// Returns the per-row dot products accumulated into `out` and the
    /// number of cycles the sweep took.
    fn sweep_tile(
        &self,
        a: &Matrix<i8>,
        b: &Matrix<i8>,
        k0: usize,
        n0: usize,
        out: &mut Matrix<i32>,
    ) -> u64 {
        let m_dim = a.rows();
        let kk = (a.cols() - k0).min(self.kp);
        let nn = (b.cols() - n0).min(self.np);

        // PE state: stationary weight, moving activation, moving psum.
        let mut a_reg = vec![vec![0i8; nn]; kk];
        let mut psum = vec![vec![0i32; nn]; kk];
        let total_cycles = m_dim + kk + nn - 1;

        for t in 0..total_cycles {
            // Registers update simultaneously: sweep right-to-left,
            // bottom-to-top so reads see previous-cycle values.
            for i in (0..kk).rev() {
                for j in (0..nn).rev() {
                    let a_in = if j == 0 {
                        // Row i receives A[t − i][k0 + i] (skewed feed).
                        let m = t as isize - i as isize;
                        if m >= 0 && (m as usize) < m_dim {
                            a[(m as usize, k0 + i)]
                        } else {
                            0
                        }
                    } else {
                        a_reg[i][j - 1]
                    };
                    let psum_in = if i == 0 { 0 } else { psum[i - 1][j] };
                    // This PE's weight is B[k0+i][n0+j].
                    let w = i32::from(b[(k0 + i, n0 + j)]);
                    psum[i][j] = psum_in + i32::from(a_in) * w;
                    a_reg[i][j] = a_in;
                }
            }
            // Row m's result for column j drains from PE row kk−1 at
            // t = m + (kk − 1) + j.
            for j in 0..nn {
                let m = t as isize - (kk as isize - 1) - j as isize;
                if m >= 0 && (m as usize) < m_dim {
                    out[(m as usize, n0 + j)] += psum[kk - 1][j];
                }
            }
        }
        total_cycles as u64
    }
}

impl DenseArray for SystolicArray {
    fn name(&self) -> &'static str {
        "TPU(systolic-WS)"
    }

    fn pe_count(&self) -> usize {
        self.kp * self.np
    }

    fn simulate(&self, a: &Matrix<i8>, b: &Matrix<i8>) -> (Matrix<i32>, SimStats) {
        assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
        let (m, n, k) = (a.rows(), b.cols(), a.cols());
        let mut out = Matrix::<i32>::zeros(m, n);
        let mut cycles = 0u64;
        let mut k0 = 0;
        while k0 < k {
            let kk = (k - k0).min(self.kp);
            let mut n0 = 0;
            while n0 < n {
                cycles += kk as u64; // weight tile load
                cycles += self.sweep_tile(a, b, k0, n0, &mut out);
                n0 += self.np;
            }
            k0 += self.kp;
        }
        let macs = (m * n * k) as u64;
        let stats = SimStats {
            cycles,
            macs,
            partial_products: macs * 4, // parallel radix-4 MACs reduce 4 PPs
            busy_per_column: vec![cycles.saturating_sub(self.kp as u64 + self.np as u64); self.np],
            sync_events: 0,
            lanes: self.pe_count() as u64,
        };
        (out, stats)
    }

    fn estimate_cycles(&self, m: usize, n: usize, k: usize) -> u64 {
        let k_tiles = k.div_ceil(self.kp);
        let n_tiles = n.div_ceil(self.np);
        let mut cycles = 0u64;
        for kt in 0..k_tiles {
            let kk = (k - kt * self.kp).min(self.kp);
            for nt in 0..n_tiles {
                let nn = (n - nt * self.np).min(self.np);
                cycles += kk as u64 + (m + kk + nn - 1) as u64;
            }
        }
        cycles
    }
}

impl SystolicArray {
    /// Cycle estimate with double-buffered weight loads: tile loads overlap
    /// the previous tile's sweep, as production systolic arrays do. This is
    /// the fair baseline for the paper's §V-D workload comparisons.
    pub fn estimate_cycles_pipelined(&self, m: usize, n: usize, k: usize) -> u64 {
        let base = self.estimate_cycles(m, n, k);
        // Remove the serialized load cycles (one kk per tile), keeping the
        // first tile's cold load.
        let k_tiles = k.div_ceil(self.kp);
        let n_tiles = n.div_ceil(self.np);
        let mut loads = 0u64;
        for kt in 0..k_tiles {
            let kk = (k - kt * self.kp).min(self.kp) as u64;
            loads += kk * n_tiles as u64;
        }
        let first = (k.min(self.kp)) as u64;
        base - loads + first
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpe_workloads::distributions::uniform_int8_matrix;
    use tpe_workloads::matrix::matmul_i8;

    #[test]
    fn exact_on_square_tile() {
        let a = uniform_int8_matrix(8, 8, 10);
        let b = uniform_int8_matrix(8, 8, 20);
        let arr = SystolicArray::new(8, 8);
        let (c, stats) = arr.simulate(&a, &b);
        assert_eq!(c, matmul_i8(&a, &b));
        // One tile: load 8 + sweep (8 + 8 + 8 − 1) = 31 cycles.
        assert_eq!(stats.cycles, 8 + 23);
    }

    #[test]
    fn exact_when_dims_exceed_array() {
        let a = uniform_int8_matrix(5, 19, 30);
        let b = uniform_int8_matrix(19, 9, 40);
        let arr = SystolicArray::new(4, 4);
        let (c, _) = arr.simulate(&a, &b);
        assert_eq!(c, matmul_i8(&a, &b));
    }

    #[test]
    fn exact_on_gemv() {
        // M = 1 (the GPT-2 decode shape).
        let a = uniform_int8_matrix(1, 16, 50);
        let b = uniform_int8_matrix(16, 7, 60);
        let arr = SystolicArray::new(8, 8);
        let (c, _) = arr.simulate(&a, &b);
        assert_eq!(c, matmul_i8(&a, &b));
    }

    #[test]
    fn estimate_matches_simulation_across_shapes() {
        let arr = SystolicArray::new(4, 8);
        for (m, n, k) in [(3, 5, 7), (16, 16, 16), (1, 9, 33), (10, 24, 4)] {
            let a = uniform_int8_matrix(m, k, (m * n) as u64);
            let b = uniform_int8_matrix(k, n, (n * k) as u64);
            let (_, stats) = arr.simulate(&a, &b);
            assert_eq!(stats.cycles, arr.estimate_cycles(m, n, k), "{m}x{n}x{k}");
        }
    }

    /// Pipeline arithmetic: per-tile latency is M + KP + NP − 1, so the
    /// array approaches one output row per cycle for large M.
    #[test]
    fn throughput_approaches_one_row_per_cycle() {
        let arr = SystolicArray::new(32, 32);
        let cycles = arr.estimate_cycles(10_000, 32, 32);
        let per_row = cycles as f64 / 10_000.0;
        assert!(per_row < 1.02, "rows/cycle {per_row}");
    }
}
