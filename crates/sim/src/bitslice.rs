//! Column-synchronous bit-slice array: the execution substrate of
//! OPT3 / OPT4C / OPT4E.
//!
//! Organization (paper Figure 7/8):
//!
//! * The array has `MP` **columns**; column `c` owns one row of `A` at a
//!   time and broadcasts that operand's *encoded digits* down the column.
//! * Each column contains `NP` PEs (× `lanes_per_pe` lanes for OPT4E
//!   groups); every lane serves one output column `n`, so a column covers
//!   `NP · lanes` outputs per pass and `⌈N / (NP·lanes)⌉` passes cover N.
//! * A column spends **one cycle per non-zero digit** of each `A[m][k]`
//!   (zero digits are sparse-skipped; all-zero operands are skipped
//!   entirely by the prefetcher).
//! * Columns run asynchronously between `sync` barriers placed every `KT`
//!   operands of the reduction; a barrier completes when the slowest
//!   column finishes (`Tsync = max(T_1 … T_MP)`, Eq. 7).
//!
//! Cycle counts are exact under these semantics, and the computed matrix
//! is produced through the actual serial digit datapath
//! ([`tpe_arith::mac::SerialDigitMac`]), so results are bit-exact.

use crate::stats::SimStats;
use tpe_arith::encode::{Encoder, EncodingKind};
use tpe_arith::mac::SerialDigitMac;
use tpe_workloads::Matrix;

/// Configuration of a column-synchronous bit-slice array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitsliceConfig {
    /// Number of columns (spatial M).
    pub mp: usize,
    /// PEs per column (spatial N).
    pub np: usize,
    /// Output lanes per PE (4 for OPT4E PE-groups, 1 otherwise).
    pub lanes_per_pe: usize,
    /// Operands between `sync` barriers (the temporal K granularity; the
    /// paper synchronizes at most every `KT × KP` cycles).
    pub kt: usize,
    /// Multiplicand encoding (EN-T for the proposed designs).
    pub encoding: EncodingKind,
}

impl BitsliceConfig {
    /// OPT3's Table VII configuration: 32×32 PEs, EN-T encoding.
    pub fn opt3() -> Self {
        Self {
            mp: 32,
            np: 32,
            lanes_per_pe: 1,
            kt: 16,
            encoding: EncodingKind::EnT,
        }
    }

    /// OPT4C: same array, shared out-of-array encoders (cycle-identical to
    /// OPT3; the difference is area/power, priced by `tpe-core`).
    pub fn opt4c() -> Self {
        Self::opt3()
    }

    /// OPT4E: 32×32 PE-groups, each group 4 lanes sharing one 6-2 tree.
    pub fn opt4e() -> Self {
        Self {
            mp: 32,
            np: 32,
            lanes_per_pe: 4,
            kt: 16,
            encoding: EncodingKind::EnT,
        }
    }

    /// Output columns covered per pass.
    pub fn n_per_pass(&self) -> usize {
        self.np * self.lanes_per_pe
    }

    /// Total MAC lanes in the array.
    pub fn lanes(&self) -> usize {
        self.mp * self.np * self.lanes_per_pe
    }
}

/// The column-synchronous array simulator.
#[derive(Debug, Clone)]
pub struct BitsliceArray {
    cfg: BitsliceConfig,
}

impl BitsliceArray {
    /// Creates the array.
    ///
    /// # Panics
    ///
    /// Panics if any configuration dimension is zero.
    pub fn new(cfg: BitsliceConfig) -> Self {
        assert!(cfg.mp > 0 && cfg.np > 0 && cfg.lanes_per_pe > 0 && cfg.kt > 0);
        Self { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &BitsliceConfig {
        &self.cfg
    }

    /// Per-operand serial cycle cost: the number of non-zero digits.
    fn operand_cycles(enc: &dyn Encoder, v: i8) -> u64 {
        enc.num_pps(i64::from(v), 8) as u64
    }

    /// Simulates `C = A·B` exactly, returning the product and statistics.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn simulate(&self, a: &Matrix<i8>, b: &Matrix<i8>) -> (Matrix<i32>, SimStats) {
        assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
        let enc = self.cfg.encoding.encoder();
        let (m, n, k) = (a.rows(), b.cols(), a.cols());
        let mut out = Matrix::<i32>::zeros(m, n);

        // Exact values through the serial digit datapath.
        for i in 0..m {
            for j in 0..n {
                let mut mac = SerialDigitMac::new(32);
                for x in 0..k {
                    for d in enc.encode_nonzero(i64::from(a[(i, x)]), 8) {
                        mac.step(d, i64::from(b[(x, j)]));
                    }
                }
                out[(i, j)] = mac.resolve() as i32;
            }
        }

        let stats = self.cycle_stats(a, n);
        (out, stats)
    }

    /// Cycle/utilization statistics only — exact under the lockstep-column
    /// semantics and cheap enough for network-level sweeps (cycles do not
    /// depend on `B`'s values, only on `A`'s digit statistics and `N`).
    pub fn cycle_stats(&self, a: &Matrix<i8>, n: usize) -> SimStats {
        let enc = self.cfg.encoding.encoder();
        let (m, k) = (a.rows(), a.cols());
        let n_passes = n.div_ceil(self.cfg.n_per_pass()) as u64;

        let mut cycles = 0u64;
        let mut busy = vec![0u64; self.cfg.mp];
        let mut pps = 0u64;
        let mut syncs = 0u64;

        let mut m0 = 0;
        while m0 < m {
            let active = (m - m0).min(self.cfg.mp);
            // Per-column serial cycles for each KT block of the reduction.
            let mut k0 = 0;
            while k0 < k {
                let kk = (k - k0).min(self.cfg.kt);
                let mut tmax = 0u64;
                let mut block_busy = vec![0u64; active];
                for (c, bb) in block_busy.iter_mut().enumerate() {
                    let row = m0 + c;
                    let t: u64 = (k0..k0 + kk)
                        .map(|x| Self::operand_cycles(enc.as_ref(), a[(row, x)]))
                        .sum();
                    *bb = t;
                    tmax = tmax.max(t);
                }
                // All passes over N repeat the same digit stream.
                cycles += tmax * n_passes;
                for (c, bb) in block_busy.iter().enumerate() {
                    busy[c] += bb * n_passes;
                }
                pps += block_busy.iter().sum::<u64>() * n_passes;
                syncs += n_passes;
                k0 += self.cfg.kt;
            }
            m0 += self.cfg.mp;
        }

        SimStats {
            cycles,
            macs: (m * n * k) as u64,
            // Each serial cycle applies one digit to every covered output
            // column, so processed PPs scale with the outputs per pass.
            partial_products: pps * self.cfg.n_per_pass().min(n) as u64,
            busy_per_column: busy,
            sync_events: syncs,
            lanes: self.cfg.lanes() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpe_workloads::distributions::{normal_int8_matrix, uniform_int8_matrix};
    use tpe_workloads::matrix::matmul_i8;

    fn small_cfg() -> BitsliceConfig {
        BitsliceConfig {
            mp: 4,
            np: 4,
            lanes_per_pe: 1,
            kt: 8,
            encoding: EncodingKind::EnT,
        }
    }

    #[test]
    fn bit_exact_against_reference() {
        let a = uniform_int8_matrix(9, 19, 100);
        let b = uniform_int8_matrix(19, 7, 101);
        let (c, stats) = BitsliceArray::new(small_cfg()).simulate(&a, &b);
        assert_eq!(c, matmul_i8(&a, &b));
        assert_eq!(stats.macs, 9 * 19 * 7);
        assert!(stats.cycles > 0);
    }

    /// Hand-checked cycle count on a 2-column array with known operands.
    #[test]
    fn cycle_count_is_max_over_columns() {
        // Column 0 processes [124, 15] → 2 + 2 = 4 cycles.
        // Column 1 processes [91, 0]  → 4 + 0 = 4 cycles.
        let a = Matrix::from_vec(2, 2, vec![124i8, 15, 91, 0]);
        let cfg = BitsliceConfig {
            mp: 2,
            np: 2,
            lanes_per_pe: 1,
            kt: 2,
            encoding: EncodingKind::EnT,
        };
        let stats = BitsliceArray::new(cfg).cycle_stats(&a, 2);
        assert_eq!(stats.cycles, 4);
        assert_eq!(stats.busy_per_column, vec![4, 4]);
        assert_eq!(stats.sync_events, 1);
    }

    /// Sync barriers make the slow column gate the block.
    #[test]
    fn slow_column_gates_sync() {
        // Column 0: all zeros (0 cycles); column 1: −1 → worst-case digits.
        let a = Matrix::from_vec(2, 1, vec![0i8, -1]);
        let cfg = BitsliceConfig {
            mp: 2,
            np: 1,
            lanes_per_pe: 1,
            kt: 1,
            encoding: EncodingKind::BitSerialComplement,
        };
        let stats = BitsliceArray::new(cfg).cycle_stats(&a, 1);
        assert_eq!(stats.cycles, 8, "-1 has 8 complement slices");
        assert_eq!(stats.busy_per_column, vec![0, 8]);
        assert!((stats.utilization() - 0.5).abs() < 1e-12);
    }

    /// Longer K reduces the relative sync penalty (§VI): utilization grows
    /// with the reduction dimension.
    #[test]
    fn utilization_improves_with_k() {
        let cfg = BitsliceConfig {
            mp: 8,
            np: 4,
            lanes_per_pe: 1,
            kt: usize::MAX,
            encoding: EncodingKind::EnT,
        };
        let short = BitsliceArray::new(cfg).cycle_stats(&normal_int8_matrix(8, 9, 1.0, 5), 4);
        let long = BitsliceArray::new(cfg).cycle_stats(&normal_int8_matrix(8, 576, 1.0, 5), 4);
        assert!(
            long.utilization() > short.utilization(),
            "K=576 util {} should beat K=9 util {}",
            long.utilization(),
            short.utilization()
        );
        assert!(long.utilization() > 0.9, "paper reports >90% at K=576");
    }

    /// OPT4E's 4 lanes per PE quarter the number of passes over N.
    #[test]
    fn lanes_reduce_passes() {
        let a = normal_int8_matrix(4, 32, 1.0, 9);
        let base = BitsliceConfig {
            mp: 4,
            np: 4,
            lanes_per_pe: 1,
            kt: 8,
            encoding: EncodingKind::EnT,
        };
        let grouped = BitsliceConfig {
            lanes_per_pe: 4,
            ..base
        };
        let c1 = BitsliceArray::new(base).cycle_stats(&a, 16);
        let c4 = BitsliceArray::new(grouped).cycle_stats(&a, 16);
        assert_eq!(c1.cycles, 4 * c4.cycles);
    }

    /// Ragged M tail: inactive columns don't contribute busy cycles.
    #[test]
    fn ragged_m_tail() {
        let a = normal_int8_matrix(5, 16, 1.0, 33);
        let stats = BitsliceArray::new(small_cfg()).cycle_stats(&a, 4);
        assert_eq!(stats.busy_per_column.len(), 4);
        // Two m-tiles: {rows 0-3} then {row 4} → only column 0 busy there.
        assert!(stats.busy_per_column[0] > stats.busy_per_column[3] / 2);
    }

    /// Average PPs per MAC tracks the encoder statistics (≈2.2 for EN-T on
    /// normal data).
    #[test]
    fn avg_pps_matches_encoding() {
        let a = normal_int8_matrix(16, 128, 1.0, 77);
        let cfg = BitsliceConfig {
            mp: 16,
            np: 8,
            lanes_per_pe: 1,
            kt: 32,
            encoding: EncodingKind::EnT,
        };
        let stats = BitsliceArray::new(cfg).cycle_stats(&a, 8);
        let avg = stats.avg_pps_per_mac();
        assert!((2.0..2.5).contains(&avg), "avg NumPPs {avg}");
    }
}
