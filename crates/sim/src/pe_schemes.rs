//! The six PE computation schemes of the paper's Figure 2, as executable
//! single-PE models.
//!
//! | Scheme | Figure | Cycles per dot product |
//! |---|---|---|
//! | [`TraditionalMacPe`] | 2(A) | K (one MAC per cycle, 4 PPs in parallel) |
//! | [`BitSerialPe`] | 2(B) | Σ non-zero complement bit-slices |
//! | [`BitInterleavedPe`] | 2(C) | max over lanes of non-zero slices (shared bit weight) |
//! | [`Radix4SerialPe`] | 2(E) | Σ non-zero EN-T digits (skips 0s *and* 1-runs) |
//! | [`Radix4InterleavedPe`] | 2(F) | max over lanes of non-zero digits (+ prefetch) |
//!
//! (Figure 2(D) — the OPT1 compressor-accumulation MAC — lives in
//! [`tpe_arith::mac::CompressAccMac`]; Figure 2(G)'s floating-point bucket
//! PE in [`tpe_arith::float`].)
//!
//! Every scheme computes the *exact* dot product through its own datapath
//! and reports the cycles its control schedule would take, so the paper's
//! worked comparison — 114, 15, 124 needing 4/4/5 bit-serial cycles but
//! only 3/2/2 encoded cycles — is directly checkable.

use crate::stats::SimStats;
use tpe_arith::csa::CsAccumulator;
use tpe_arith::encode::{BitSerialComplement, Encoder, EntEncoder};
use tpe_arith::mac::TraditionalMac;

/// Result of one dot-product run on a PE scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DotResult {
    /// The exact dot-product value.
    pub value: i64,
    /// Cycles the schedule took.
    pub cycles: u64,
    /// Partial products processed.
    pub partial_products: u64,
}

/// A single-PE computation scheme executing dot products.
pub trait PeScheme {
    /// Scheme name as used in Figure 2.
    fn name(&self) -> &'static str;

    /// Computes `Σ a[i]·b[i]` through the scheme's datapath.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    fn dot(&mut self, a: &[i8], b: &[i8]) -> DotResult;
}

/// Figure 2(A): the traditional parallel MAC — one multiply–accumulate per
/// cycle, all radix-4 partial products reduced spatially.
#[derive(Debug, Default)]
pub struct TraditionalMacPe;

impl PeScheme for TraditionalMacPe {
    fn name(&self) -> &'static str {
        "Traditional MAC (Fig 2A)"
    }

    fn dot(&mut self, a: &[i8], b: &[i8]) -> DotResult {
        assert_eq!(a.len(), b.len());
        let mut mac = TraditionalMac::new(tpe_arith::encode::MbeEncoder, 48);
        for (&x, &y) in a.iter().zip(b) {
            mac.mac(i64::from(x), i64::from(y), 8);
        }
        DotResult {
            value: mac.value(),
            cycles: a.len() as u64,
            partial_products: mac.stats().partial_products,
        }
    }
}

/// Figure 2(B): radix-2 bit-serial with a skip-zero unit — one cycle per
/// **non-zero** bit-slice of the multiplicand, shift-accumulated.
#[derive(Debug, Default)]
pub struct BitSerialPe;

impl PeScheme for BitSerialPe {
    fn name(&self) -> &'static str {
        "Radix-2 bit-serial (Fig 2B)"
    }

    fn dot(&mut self, a: &[i8], b: &[i8]) -> DotResult {
        assert_eq!(a.len(), b.len());
        let mut acc = CsAccumulator::new(48);
        let mut cycles = 0u64;
        for (&x, &y) in a.iter().zip(b) {
            // Step ❶: extract non-zero slice indices (the skip-zero unit).
            for d in BitSerialComplement.encode_nonzero(i64::from(x), 8) {
                // Step ❷: PPG from the index and B; step ❸: shift + accumulate.
                acc.accumulate_value((i64::from(d.coeff) * i64::from(y)) << d.weight);
                cycles += 1;
            }
        }
        DotResult {
            value: acc.resolve(),
            cycles,
            partial_products: cycles,
        }
    }
}

/// Figure 2(C): radix-2 bit-interleaved — `lanes` operands processed
/// against the **same bit weight** simultaneously (no shifters in the
/// datapath; one adder tree). A bit position is skipped only when every
/// lane has a zero slice there; per-lane skipping needs the per-lane
/// queues the paper's baselines add, modeled by [`Self::per_lane`].
#[derive(Debug)]
pub struct BitInterleavedPe {
    lanes: usize,
    per_lane_skip: bool,
}

impl BitInterleavedPe {
    /// Lock-step interleaving: a bit weight is processed if *any* lane
    /// needs it.
    pub fn lockstep(lanes: usize) -> Self {
        assert!(lanes > 0);
        Self {
            lanes,
            per_lane_skip: false,
        }
    }

    /// Per-lane skipping (Pragmatic-style offset lanes): each lane consumes
    /// only its own non-zero slices; the group finishes at the slowest
    /// lane.
    pub fn per_lane(lanes: usize) -> Self {
        assert!(lanes > 0);
        Self {
            lanes,
            per_lane_skip: true,
        }
    }
}

impl PeScheme for BitInterleavedPe {
    fn name(&self) -> &'static str {
        if self.per_lane_skip {
            "Radix-2 interleaved, per-lane skip (Fig 2C+)"
        } else {
            "Radix-2 interleaved, lockstep (Fig 2C)"
        }
    }

    fn dot(&mut self, a: &[i8], b: &[i8]) -> DotResult {
        assert_eq!(a.len(), b.len());
        let mut acc = CsAccumulator::new(48);
        let mut cycles = 0u64;
        let mut pps = 0u64;
        for chunk in a.chunks(self.lanes).zip(b.chunks(self.lanes)) {
            let (ca, cb) = chunk;
            let digit_lists: Vec<Vec<tpe_arith::encode::SignedDigit>> = ca
                .iter()
                .map(|&x| BitSerialComplement.encode(i64::from(x), 8))
                .collect();
            if self.per_lane_skip {
                // Each lane processes its own non-zero queue; the batch
                // takes as long as the fullest queue.
                let mut batch_max = 0u64;
                for (digits, &y) in digit_lists.iter().zip(cb) {
                    let mut lane_cycles = 0u64;
                    for d in digits.iter().filter(|d| d.is_nonzero()) {
                        acc.accumulate_value((i64::from(d.coeff) * i64::from(y)) << d.weight);
                        lane_cycles += 1;
                        pps += 1;
                    }
                    batch_max = batch_max.max(lane_cycles);
                }
                cycles += batch_max;
            } else {
                // Lock-step: walk bit weights; all lanes fire together.
                for bit in 0..8usize {
                    let any = digit_lists.iter().any(|d| d[bit].is_nonzero());
                    if !any {
                        continue;
                    }
                    for (digits, &y) in digit_lists.iter().zip(cb) {
                        let d = digits[bit];
                        if d.is_nonzero() {
                            acc.accumulate_value((i64::from(d.coeff) * i64::from(y)) << d.weight);
                            pps += 1;
                        }
                    }
                    cycles += 1;
                }
            }
        }
        DotResult {
            value: acc.resolve(),
            cycles,
            partial_products: pps,
        }
    }
}

/// Figure 2(E): the proposed radix-4 serial PE — EN-T encoding, sparse
/// selection of non-zero digits, 3-2 compressor accumulation. Skips zeros
/// *and* consecutive-ones runs.
#[derive(Debug, Default)]
pub struct Radix4SerialPe;

impl PeScheme for Radix4SerialPe {
    fn name(&self) -> &'static str {
        "Radix-4 encoded serial (Fig 2E)"
    }

    fn dot(&mut self, a: &[i8], b: &[i8]) -> DotResult {
        assert_eq!(a.len(), b.len());
        let mut acc = CsAccumulator::new(48);
        let mut cycles = 0u64;
        for (&x, &y) in a.iter().zip(b) {
            for d in EntEncoder.encode_nonzero(i64::from(x), 8) {
                acc.accumulate_value((i64::from(d.coeff) * i64::from(y)) << d.weight);
                cycles += 1;
            }
        }
        DotResult {
            value: acc.resolve(),
            cycles,
            partial_products: cycles,
        }
    }
}

/// Figure 2(F): the proposed radix-4 bit-interleaved PE — encoded digits
/// with per-lane sparse queues and B prefetched by non-zero index.
#[derive(Debug)]
pub struct Radix4InterleavedPe {
    lanes: usize,
}

impl Radix4InterleavedPe {
    /// Creates the PE with `lanes` parallel operand lanes.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes > 0);
        Self { lanes }
    }
}

impl PeScheme for Radix4InterleavedPe {
    fn name(&self) -> &'static str {
        "Radix-4 encoded interleaved (Fig 2F)"
    }

    fn dot(&mut self, a: &[i8], b: &[i8]) -> DotResult {
        assert_eq!(a.len(), b.len());
        let mut acc = CsAccumulator::new(48);
        let mut cycles = 0u64;
        let mut pps = 0u64;
        for (ca, cb) in a.chunks(self.lanes).zip(b.chunks(self.lanes)) {
            let mut batch_max = 0u64;
            for (&x, &y) in ca.iter().zip(cb) {
                let digits = EntEncoder.encode_nonzero(i64::from(x), 8);
                for d in &digits {
                    acc.accumulate_value((i64::from(d.coeff) * i64::from(y)) << d.weight);
                }
                pps += digits.len() as u64;
                batch_max = batch_max.max(digits.len() as u64);
            }
            cycles += batch_max;
        }
        DotResult {
            value: acc.resolve(),
            cycles,
            partial_products: pps,
        }
    }
}

/// Stripes-style plain bit-serial PE: one cycle per bit position of the
/// multiplicand, **no** zero skipping — the pre-sparsity baseline the
/// paper's related work starts from.
#[derive(Debug, Default)]
pub struct StripesPe;

impl PeScheme for StripesPe {
    fn name(&self) -> &'static str {
        "Stripes (plain bit-serial)"
    }

    fn dot(&mut self, a: &[i8], b: &[i8]) -> DotResult {
        assert_eq!(a.len(), b.len());
        let mut acc = CsAccumulator::new(48);
        let mut cycles = 0u64;
        let mut pps = 0u64;
        for (&x, &y) in a.iter().zip(b) {
            for d in BitSerialComplement.encode(i64::from(x), 8) {
                cycles += 1; // every bit position costs a cycle
                if d.is_nonzero() {
                    acc.accumulate_value((i64::from(d.coeff) * i64::from(y)) << d.weight);
                    pps += 1;
                }
            }
        }
        DotResult {
            value: acc.resolve(),
            cycles,
            partial_products: pps,
        }
    }
}

/// Laconic-style PE: **both** operands decompose into signed power-of-two
/// terms; the PE processes one term-pair product per cycle, so cycles per
/// MAC = NumPPs(a) × NumPPs(b) — tiny for sparse pairs, quadratic for
/// dense ones. (Laconic uses its own term encoding; CSD gives the same
/// minimal term counts.)
#[derive(Debug, Default)]
pub struct LaconicPe;

impl PeScheme for LaconicPe {
    fn name(&self) -> &'static str {
        "Laconic (term-pair serial)"
    }

    fn dot(&mut self, a: &[i8], b: &[i8]) -> DotResult {
        assert_eq!(a.len(), b.len());
        use tpe_arith::encode::CsdEncoder;
        let mut acc = CsAccumulator::new(48);
        let mut cycles = 0u64;
        for (&x, &y) in a.iter().zip(b) {
            let ta = CsdEncoder.encode_nonzero(i64::from(x), 8);
            let tb = CsdEncoder.encode_nonzero(i64::from(y), 8);
            for da in &ta {
                for db in &tb {
                    // One 1×1 "multiplication" (an AND + sign) per cycle.
                    let term = i64::from(da.coeff) * i64::from(db.coeff);
                    acc.accumulate_value(term << (da.weight + db.weight));
                    cycles += 1;
                }
            }
        }
        DotResult {
            value: acc.resolve(),
            cycles,
            partial_products: cycles,
        }
    }
}

/// Runs every scheme on the same vectors, for comparison tables.
pub fn compare_schemes(a: &[i8], b: &[i8]) -> Vec<(&'static str, DotResult)> {
    let mut schemes: Vec<Box<dyn PeScheme>> = vec![
        Box::new(TraditionalMacPe),
        Box::new(StripesPe),
        Box::new(BitSerialPe),
        Box::new(BitInterleavedPe::lockstep(8)),
        Box::new(BitInterleavedPe::per_lane(8)),
        Box::new(LaconicPe),
        Box::new(Radix4SerialPe),
        Box::new(Radix4InterleavedPe::new(8)),
    ];
    schemes
        .iter_mut()
        .map(|s| {
            let r = s.dot(a, b);
            (s.name(), r)
        })
        .collect()
}

/// Converts a scheme run into [`SimStats`] for downstream energy models.
pub fn to_stats(r: DotResult, lanes: u64) -> SimStats {
    SimStats {
        cycles: r.cycles,
        macs: 0,
        partial_products: r.partial_products,
        busy_per_column: vec![r.cycles],
        sync_events: 0,
        lanes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpe_workloads::distributions::{normal_int8_matrix, uniform_int8_matrix};

    fn reference(a: &[i8], b: &[i8]) -> i64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| i64::from(x) * i64::from(y))
            .sum()
    }

    /// Every scheme computes the exact dot product.
    #[test]
    fn all_schemes_exact() {
        let a: Vec<i8> = uniform_int8_matrix(1, 257, 42).data().to_vec();
        let b: Vec<i8> = uniform_int8_matrix(1, 257, 43).data().to_vec();
        let expect = reference(&a, &b);
        for (name, r) in compare_schemes(&a, &b) {
            assert_eq!(r.value, expect, "{name}");
            assert!(r.cycles > 0);
        }
    }

    /// Figure 2's worked example: multiplicands {114, 15, 124} take
    /// 4 + 4 + 5 = 13 bit-serial cycles but 3 + 2 + 2 = 7 encoded cycles.
    #[test]
    fn figure2_cycle_comparison() {
        let a = [114i8, 15, 124];
        let b = [3i8, -5, 7];
        let mut serial = BitSerialPe;
        let mut encoded = Radix4SerialPe;
        assert_eq!(serial.dot(&a, &b).cycles, 13);
        assert_eq!(encoded.dot(&a, &b).cycles, 7);
    }

    /// The proposed encoded serial PE beats radix-2 bit-serial on normal
    /// data by roughly the Table III ratio (3.98 / 2.22 ≈ 1.8×).
    #[test]
    fn encoded_serial_speedup_on_normal_data() {
        let m = normal_int8_matrix(1, 4096, 1.0, 7);
        let a: Vec<i8> = m.data().to_vec();
        let b: Vec<i8> = normal_int8_matrix(1, 4096, 1.0, 8).data().to_vec();
        let s = BitSerialPe.dot(&a, &b).cycles as f64;
        let e = Radix4SerialPe.dot(&a, &b).cycles as f64;
        let ratio = s / e;
        assert!((1.5..2.1).contains(&ratio), "speedup {ratio}");
    }

    /// Lock-step interleaving wastes cycles versus per-lane skipping, and
    /// both are bounded by the serial schedule.
    #[test]
    fn interleaving_orderings() {
        let a: Vec<i8> = normal_int8_matrix(1, 512, 1.0, 9).data().to_vec();
        let b: Vec<i8> = normal_int8_matrix(1, 512, 1.0, 10).data().to_vec();
        let lockstep = BitInterleavedPe::lockstep(8).dot(&a, &b).cycles;
        let per_lane = BitInterleavedPe::per_lane(8).dot(&a, &b).cycles;
        let serial = BitSerialPe.dot(&a, &b).cycles;
        assert!(per_lane <= lockstep, "{per_lane} vs {lockstep}");
        // 8 lanes amortize: a batch costs max, serial costs sum.
        assert!(per_lane * 8 >= serial, "work conservation");
        assert!(per_lane < serial, "parallelism must help");
    }

    /// The encoded interleaved PE (2F) inherits both advantages: fewer
    /// digits than (2C+) and batch parallelism over (2E).
    #[test]
    fn radix4_interleaved_dominates() {
        let a: Vec<i8> = normal_int8_matrix(1, 512, 1.0, 11).data().to_vec();
        let b: Vec<i8> = normal_int8_matrix(1, 512, 1.0, 12).data().to_vec();
        let fig2c = BitInterleavedPe::per_lane(8).dot(&a, &b).cycles;
        let fig2e = Radix4SerialPe.dot(&a, &b).cycles;
        let fig2f = Radix4InterleavedPe::new(8).dot(&a, &b).cycles;
        assert!(fig2f < fig2c, "encoding helps the interleaved PE");
        assert!(fig2f < fig2e, "interleaving helps the encoded PE");
    }

    /// Stripes pays full width; skip-zero (Fig 2B) strictly improves it.
    #[test]
    fn stripes_vs_skip_zero() {
        let a: Vec<i8> = normal_int8_matrix(1, 256, 1.0, 31).data().to_vec();
        let b: Vec<i8> = normal_int8_matrix(1, 256, 1.0, 32).data().to_vec();
        let stripes = StripesPe.dot(&a, &b);
        let skip = BitSerialPe.dot(&a, &b);
        assert_eq!(stripes.cycles, 256 * 8, "Stripes is data-independent");
        assert!(skip.cycles < stripes.cycles);
        assert_eq!(stripes.value, skip.value);
    }

    /// Laconic's term-pair count is quadratic per operand pair: great on
    /// sparse data, poor on dense — the low-area/low-throughput trade
    /// Table VII shows (0.81 peak TOPS at 1024 PEs).
    #[test]
    fn laconic_term_pairs() {
        // Sparse pair: 2 × 1 terms → 2 cycles.
        let r = LaconicPe.dot(&[124], &[64]);
        assert_eq!(r.cycles, 2);
        assert_eq!(r.value, 124 * 64);
        // Dense pair: 4 × 4 terms → 16 cycles, 4× a radix-4 serial PE.
        let dense = LaconicPe.dot(&[85], &[85]);
        assert_eq!(dense.cycles, 16);
        // On normal data Laconic averages ≈ (avg CSD terms)² ≈ 4.4
        // cycles/MAC versus EN-T serial's ≈ 2.2.
        let a: Vec<i8> = normal_int8_matrix(1, 1024, 1.0, 33).data().to_vec();
        let b: Vec<i8> = normal_int8_matrix(1, 1024, 1.0, 34).data().to_vec();
        let lac = LaconicPe.dot(&a, &b).cycles as f64 / 1024.0;
        let ent = Radix4SerialPe.dot(&a, &b).cycles as f64 / 1024.0;
        assert!(lac > 1.5 * ent, "Laconic {lac:.2} vs EN-T serial {ent:.2}");
    }

    /// Traditional MAC cycles are data-independent.
    #[test]
    fn mac_cycles_data_independent() {
        let zeros = vec![0i8; 64];
        let dense = vec![-1i8; 64];
        let b = vec![1i8; 64];
        assert_eq!(TraditionalMacPe.dot(&zeros, &b).cycles, 64);
        assert_eq!(TraditionalMacPe.dot(&dense, &b).cycles, 64);
        // While the bit-serial PE's vary wildly.
        assert_eq!(BitSerialPe.dot(&zeros, &b).cycles, 0);
        assert_eq!(BitSerialPe.dot(&dense, &b).cycles, 64 * 8);
    }
}
