//! Design-space walk: derive OPT1 → OPT4 from the traditional MAC nest via
//! legality-checked transformations, verifying each step by execution.
//!
//! ```text
//! cargo run --example design_space
//! ```

use tpe::arith::encode::EncodingKind;
use tpe::core::notation::interp::execute;
use tpe::core::notation::{costing, legality, nests, printer, transform};
use tpe::workloads::distributions::uniform_int8_matrix;
use tpe::workloads::matrix::matmul_i8;

fn main() {
    let (m, n, k) = (4, 4, 8);
    let enc = EncodingKind::EnT;
    let a = uniform_int8_matrix(m, k, 1);
    let b = uniform_int8_matrix(k, n, 2);
    let reference = matmul_i8(&a, &b);

    let traditional = nests::traditional_mac(m, n, k, enc);
    println!("{}", printer::render(&traditional));

    // The derivation chain of §IV, as actual tree rewrites.
    let opt1 = transform::fuse_add_into_half_reduce(&traditional).expect("OPT1 applies");
    let opt2 = transform::temporalize_bw(&opt1).expect("OPT2 applies");
    let opt3 = transform::sparsify_bw(&opt2).expect("OPT3 applies");
    let opt4 = transform::extract_shared_encoder(&opt3).expect("OPT4 applies");

    for nest in [&opt1, &opt2, &opt3, &opt4] {
        legality::check(nest).expect("every derived nest is structurally legal");
        let (c, stats) = execute(nest, &a, &b).expect("nest executes");
        assert_eq!(
            c, reference,
            "{} diverged from the reference GEMM",
            nest.name
        );
        println!(
            "{}\n  verified ✓  adds={} shifts={} encodes={} syncs={}\n",
            printer::render(nest),
            stats.adds,
            stats.shifts,
            stats.encodes,
            stats.syncs
        );
    }

    // Transformations refuse illegal applications.
    let again = transform::extract_shared_encoder(&opt4);
    println!("re-applying OPT4: {:?}", again.expect_err("must refuse"));
    println!(
        "encoder shared over N? traditional={}, OPT4={}",
        legality::encoder_shared_over_n(&traditional),
        legality::encoder_shared_over_n(&opt4)
    );

    // The notation → cost bridge: each rewrite shortens the derived PE's
    // critical path (§III's component-position argument, mechanized).
    println!("\nderived hardware estimates:");
    for nest in [&traditional, &opt1, &opt2, &opt3, &opt4] {
        let d = costing::pe_design_of(nest);
        println!(
            "  {:<28} path {:.2} ns, fmax {:.2} GHz",
            nest.name.split(" from").next().unwrap_or(&nest.name),
            d.nominal_delay_ns,
            d.max_frequency_ghz()
        );
    }

    // Loop tiling composes with the chain (the §IV-C K1/K2 layout split).
    let tiled = transform::split_dim(
        &opt1,
        "k",
        4,
        "k1",
        "k2",
        tpe::core::notation::DimKind::Temporal,
    )
    .expect("K splits 8 = 2×4");
    assert!(transform::verify_equivalent(&opt1, &tiled, m, n, k, 9));
    println!("\nK→K1×K2 tiling verified equivalent ✓ ({})", tiled.name);
}
