//! Design-space sweep: enumerate the legal cross product of
//! (PE style × topology × encoding × corner × workload), evaluate every
//! point in parallel with a memoized synthesis cache, and print the
//! area/delay/energy Pareto front.
//!
//! ```text
//! cargo run --release --example design_space_sweep [filter]
//! ```
//!
//! An optional argument filters points by label substring, e.g.
//! `OPT4E` or `28nm@2.00`.

use tpe::dse::emit::to_csv;
use tpe::dse::{pareto_front_per_workload, sweep, DesignSpace, Objective, SweepConfig};

fn main() {
    let filter = std::env::args().nth(1).unwrap_or_default();
    let space = DesignSpace::paper_default();
    let points = space.enumerate_filtered(&filter);
    println!(
        "design space: {} legal points over 6 axes{}",
        points.len(),
        if filter.is_empty() {
            String::new()
        } else {
            format!(" (filter `{filter}`)")
        }
    );
    assert!(!points.is_empty(), "filter matched nothing");

    // Sweep serially and in parallel: the outputs must be byte-identical,
    // and the wall-clock difference is the executor's scaling.
    let serial = sweep(
        &points,
        SweepConfig {
            threads: 1,
            seed: 42,
            ..SweepConfig::default()
        },
    );
    let parallel = sweep(
        &points,
        SweepConfig {
            threads: 0,
            seed: 42,
            ..SweepConfig::default()
        },
    );
    assert_eq!(serial.results, parallel.results, "determinism violated");
    println!(
        "swept twice: {:.0} ms on 1 thread vs {:.0} ms on {} threads (×{:.2}); \
         cache {:.1}% hits ({} PE/corner pairs priced once)",
        serial.elapsed.as_secs_f64() * 1e3,
        parallel.elapsed.as_secs_f64() * 1e3,
        parallel.threads,
        serial.elapsed.as_secs_f64() / parallel.elapsed.as_secs_f64().max(1e-9),
        parallel.cache.hit_rate() * 100.0,
        parallel.cache.price_misses,
    );
    println!(
        "feasible: {} / {} points close timing at their corner",
        parallel.feasible_count(),
        points.len()
    );

    let objectives = [Objective::Area, Objective::Delay, Objective::Energy];
    let front = pareto_front_per_workload(&parallel.results, &objectives);
    println!(
        "\nPer-workload Pareto front over [area, delay, energy/MAC] — {} points:",
        front.len()
    );
    for &i in &front {
        let r = &parallel.results[i];
        let m = r.metrics.as_ref().unwrap();
        println!(
            "  {:<44} area {:>9.0} um2   delay {:>9.2} us   {:>7.2} fJ/MAC   util {:.2}",
            r.point.label(),
            m.area_um2,
            m.delay_us,
            m.energy_per_mac_fj,
            m.utilization
        );
    }

    // The CSV of the full sweep is a one-liner away:
    let csv = to_csv(&parallel.results, &front);
    println!(
        "\nCSV: {} rows × {} columns (emit::to_csv / emit::to_json)",
        csv.lines().count() - 1,
        csv.lines().next().unwrap().split(',').count()
    );
}
