//! DNN/LLM inference comparison: OPT4E versus an equal-area parallel-MAC
//! systolic TPE on GPT-2 decode and MobileNetV3 (the Figure 11–13 story).
//!
//! ```text
//! cargo run --release --example dnn_inference
//! ```

use tpe::core::arch::workload::{
    dense_layer, equal_area_lane_scale, evaluate_network, serial_layer,
};
use tpe::core::arch::ArchModel;
use tpe::workloads::models;

fn main() {
    let opt4e = ArchModel::table7_ours()
        .into_iter()
        .find(|a| a.name == "OPT4E")
        .expect("OPT4E configured");
    let scale = equal_area_lane_scale(&opt4e);
    println!("area equalization: OPT4E array ≈ {scale:.2}× the 32×32 MAC array silicon\n");

    println!("== GPT-2 decode sublayers (one token, 1024-token KV cache) ==");
    println!(
        "{:<14} {:>6} {:>12} {:>12} {:>8} {:>7}",
        "sublayer", "K", "MAC (us)", "OPT4E (us)", "speedup", "util%"
    );
    for (i, layer) in models::gpt2_decode_sublayers("L0", 1024).iter().enumerate() {
        let s = serial_layer(&opt4e, layer, 100 + i as u64);
        let d = dense_layer(layer, 1.0, scale);
        println!(
            "{:<14} {:>6} {:>12.3} {:>12.3} {:>8.2} {:>7.1}",
            layer.name,
            layer.k,
            d.delay_us,
            s.delay_us,
            d.delay_us / s.delay_us,
            s.utilization * 100.0
        );
    }

    println!("\n== Whole networks (speedup over equal-area MAC TPE) ==");
    println!(
        "{:<16} {:>8} {:>14} {:>7}",
        "network", "speedup", "energy ratio", "util%"
    );
    for net in [
        models::mobilenet_v3(),
        models::resnet18(),
        models::vit_b16(),
        models::gpt2(),
    ] {
        let r = evaluate_network(&opt4e, &net, 42);
        println!(
            "{:<16} {:>8.2} {:>14.3} {:>7.1}",
            r.name,
            r.speedup,
            r.energy_ratio,
            r.utilization * 100.0
        );
    }
    println!(
        "\npaper: MobileViT ×1.89, ViT ×2.02, GPT-2 ×2.16 speedups; higher-K nets save more energy"
    );
}
