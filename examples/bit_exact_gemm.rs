//! Bit-exactness across every simulated architecture: the same INT8 GEMM
//! through all four classic dense arrays and the column-synchronous
//! bit-slice engine, all matching the reference product exactly.
//!
//! ```text
//! cargo run --release --example bit_exact_gemm
//! ```

use tpe::arith::encode::EncodingKind;
use tpe::sim::array::ClassicArch;
use tpe::sim::{BitsliceArray, BitsliceConfig};
use tpe::workloads::distributions::normal_int8_matrix;
use tpe::workloads::matrix::matmul_i8;

fn main() {
    let (m, n, k) = (48, 40, 96);
    let a = normal_int8_matrix(m, k, 1.0, 11);
    let b = normal_int8_matrix(k, n, 1.0, 22);
    let reference = matmul_i8(&a, &b);
    println!("reference GEMM: {m}×{k} · {k}×{n}\n");
    println!(
        "{:<24} {:>9} {:>12} {:>10}",
        "engine", "cycles", "PPs", "util%"
    );

    for arch in ClassicArch::ALL {
        let engine = arch.at_paper_config();
        let (c, stats) = engine.simulate(&a, &b);
        assert_eq!(c, reference, "{} diverged!", engine.name());
        println!(
            "{:<24} {:>9} {:>12} {:>10}",
            engine.name(),
            stats.cycles,
            stats.partial_products,
            "-"
        );
    }

    for (name, cfg) in [
        ("OPT3/OPT4C (serial)", BitsliceConfig::opt3()),
        ("OPT4E (4-lane groups)", BitsliceConfig::opt4e()),
        (
            "serial, bit-serial(C)",
            BitsliceConfig {
                encoding: EncodingKind::BitSerialComplement,
                ..BitsliceConfig::opt3()
            },
        ),
    ] {
        let engine = BitsliceArray::new(cfg);
        let (c, stats) = engine.simulate(&a, &b);
        assert_eq!(c, reference, "{name} diverged!");
        println!(
            "{:<24} {:>9} {:>12} {:>10.1}",
            name,
            stats.cycles,
            stats.partial_products,
            stats.utilization() * 100.0
        );
    }

    println!("\nall engines agree with the reference product, bit for bit ✓");
    println!("(EN-T-encoded serial engines process ~1.8× fewer PPs than radix-2 bit-serial)");
}
