//! Quickstart: encode operands, run the two MAC datapaths, and price a PE.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use tpe::arith::encode::{Encoder, EncodingKind, EntEncoder};
use tpe::arith::mac::{CompressAccMac, TraditionalMac};
use tpe::core::arch::PeStyle;
use tpe::workloads::distributions::normal_int8_matrix;

fn main() {
    // 1. Encoding: the bit-weight decomposition of a multiplicand.
    println!("== EN-T encoding (the paper's Figure 3) ==");
    for v in [91i8, 124, -77] {
        let digits = EntEncoder.encode_i8(v);
        let nonzero: Vec<String> = digits
            .iter()
            .filter(|d| d.is_nonzero())
            .map(|d| d.to_string())
            .collect();
        println!(
            "  {v:>4} = Σ {{{}}}  → {} partial products",
            nonzero.join(", "),
            nonzero.len()
        );
    }

    // 2. The two MAC datapaths compute identical dot products; OPT1 just
    //    defers the carry-propagating add to the end of the reduction.
    println!("\n== MAC datapaths on a K=1024 dot product ==");
    let a = normal_int8_matrix(1, 1024, 1.0, 7);
    let b = normal_int8_matrix(1, 1024, 1.0, 8);
    let mut trad = TraditionalMac::new(EntEncoder, 32);
    let mut opt1 = CompressAccMac::new(EntEncoder, 32);
    for (&x, &y) in a.iter().zip(b.iter()) {
        trad.mac(i64::from(x), i64::from(y), 8);
        opt1.mac(i64::from(x), i64::from(y), 8);
    }
    let resolved = opt1.resolve();
    assert_eq!(trad.value(), resolved);
    println!("  result = {} (both datapaths agree)", resolved);
    println!(
        "  traditional: {} carry-propagating adds; OPT1: {} (deferred to the SIMD core)",
        trad.stats().full_adds,
        opt1.stats().full_adds
    );

    // 3. Cost: synthesize a traditional MAC and an OPT1 PE across clocks.
    println!("\n== Synthesis-model comparison (the Figure 9 story) ==");
    for f in [1.0, 1.5, 2.0] {
        let mac = PeStyle::TraditionalMac.design().synthesize(f);
        let opt = PeStyle::Opt1.design().synthesize(f);
        println!(
            "  {f:.1} GHz: MAC {:>10}  OPT1 {:>10}",
            mac.map_or("violation".into(), |r| format!("{:.0} um2", r.area_um2)),
            opt.map_or("violation".into(), |r| format!("{:.0} um2", r.area_um2)),
        );
    }

    // 4. Average NumPPs drives serial throughput (Table III).
    let m = normal_int8_matrix(256, 256, 1.0, 9);
    let avg = tpe::workloads::sparsity::avg_num_pps(&m, EncodingKind::EnT);
    println!("\n== Data statistics ==");
    println!("  EN-T average NumPPs on N(0,1) INT8 data: {avg:.2} (paper: 2.22–2.27)");
}
