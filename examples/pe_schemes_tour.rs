//! A tour of Figure 2: the six PE computation schemes on the same data,
//! plus the floating-point bucket accumulation of Figure 2(G).
//!
//! ```text
//! cargo run --release --example pe_schemes_tour
//! ```

use tpe::arith::float::{multiply, Bf16, BucketAccumulator, FpSequentialAccumulator};
use tpe::sim::pe_schemes::compare_schemes;
use tpe::workloads::distributions::normal_int8_matrix;

fn main() {
    // Integer schemes: same dot product, six datapaths.
    let a: Vec<i8> = normal_int8_matrix(1, 1024, 1.0, 3).data().to_vec();
    let b: Vec<i8> = normal_int8_matrix(1, 1024, 1.0, 4).data().to_vec();
    println!("== Figure 2 integer PE schemes (K = 1024, N(0,1) data) ==");
    println!(
        "{:<46} {:>7} {:>7} {:>11}",
        "scheme", "cycles", "PPs", "cycles/MAC"
    );
    for (name, r) in compare_schemes(&a, &b) {
        println!(
            "{name:<46} {:>7} {:>7} {:>11.2}",
            r.cycles,
            r.partial_products,
            r.cycles as f64 / 1024.0
        );
    }

    // Floating point: the accumulate bottleneck and the bucket fix.
    println!("\n== Figure 2(G): floating-point accumulation ==");
    let xs: Vec<Bf16> = (0..256)
        .map(|i| Bf16::from_f32(((i % 31) as f32 - 15.0) * 0.125))
        .collect();
    let ys: Vec<Bf16> = (0..256)
        .map(|i| Bf16::from_f32(((i % 13) as f32 - 6.0) * 0.25))
        .collect();
    let exact = tpe::arith::float::reference_dot(&xs, &ys);

    let mut seq = FpSequentialAccumulator::new();
    let mut bucket = BucketAccumulator::for_exponent_range(-8);
    for (&x, &y) in xs.iter().zip(&ys) {
        let p = multiply(x, y);
        seq.add(p);
        bucket.add(p);
    }
    let bucket_val = bucket.value();
    println!("  exact dot product:        {exact}");
    println!(
        "  sequential FP accumulate: {} ({} normalizations, err {:.3})",
        seq.value(),
        seq.stats().fp_normalizations,
        (seq.value() - exact).abs()
    );
    println!(
        "  bucket accumulate:        {} ({} normalization, err {:.3})",
        bucket_val,
        bucket.stats().fp_normalizations,
        (bucket_val - exact).abs()
    );
    println!("\nthe bucket turns K floating-point normalizations into K fixed-point");
    println!("compressor adds + 1 normalization — the same structural move as OPT1.");
}
