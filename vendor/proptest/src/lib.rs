#![warn(missing_docs)]

//! Offline shim for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro over `arg in strategy` parameters, range / tuple /
//! collection / bool strategies, `prop_assert*` / `prop_assume!` and
//! [`ProptestConfig`]. Generation is deterministic per test (seeded from
//! the test's name), so failures are reproducible. No shrinking: a failing
//! case panics with the generated inputs printed instead.

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRng;
use rand::{RngCore, RngExt, SeedableRng};

/// Per-test configuration (only the knobs the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the debug-profile test
        // suite fast while exercising the same invariants. Override with
        // PROPTEST_CASES.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is discarded, not failed.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A rejection (discarded case).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    /// A failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_for_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_int_ranges!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_strategy_for_tuples {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_strategy_for_tuples! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// A half-open range of collection sizes. Integer literals in
    /// `vec(elem, 1..300)` infer `usize` through the `From` impls, exactly
    /// as with real proptest's `SizeRange`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                start: *r.start(),
                end: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                start: n,
                end: n + 1,
            }
        }
    }

    /// Strategy for `Vec`s with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.random_range(self.size.start..self.size.end);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.random()
        }
    }
}

/// Builds the deterministic per-test RNG (FNV-1a over the test name).
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

/// Advances the RNG between cases so each case sees fresh values even when
/// a strategy consumes zero words (e.g. empty vec).
pub fn reseed_for_case(rng: &mut TestRng) {
    let _ = rng.next_u64();
}

/// The common imports (`use proptest::prelude::*;`).
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };

    /// The `prop` namespace (`prop::collection::vec`, `prop::bool::ANY`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Asserts a condition inside a `proptest!` body; failures report the
/// generated inputs instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  note: {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over deterministically generated
/// cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( config = $config:expr; ) => {};
    ( config = $config:expr;
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat in $strategy:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            let max_rejects = config.cases.saturating_mul(16).max(1024);
            while passed < config.cases {
                $crate::reseed_for_case(&mut rng);
                let __inputs = ($($crate::Strategy::generate(&$strategy, &mut rng),)*);
                let __inputs_dbg = format!("{:?}", __inputs);
                let ($($arg,)*) = __inputs;
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < max_rejects,
                            "proptest {}: too many rejected cases ({rejected})",
                            stringify!($name)
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed after {} passing case(s): {}\n  inputs: {}",
                            stringify!($name),
                            passed,
                            msg,
                            __inputs_dbg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(v in -50i64..50, u in 0usize..10) {
            prop_assert!((-50..50).contains(&v));
            prop_assert!(u < 10);
        }

        #[test]
        fn vec_strategy_length(xs in prop::collection::vec(0i32..100, 3..7)) {
            prop_assert!(xs.len() >= 3 && xs.len() < 7);
            for x in &xs {
                prop_assert!((0..100).contains(x));
            }
        }

        #[test]
        fn tuples_and_assume((a, b) in (0i32..100, 0i32..100)) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn bool_any_generates_bools(flag in prop::bool::ANY) {
            let as_int = u8::from(flag);
            prop_assert!(as_int <= 1);
        }
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failing_property_panics() {
        proptest! {
            fn inner(v in 0i32..10) {
                prop_assert!(v < 0, "v = {v}");
            }
        }
        inner();
    }
}
