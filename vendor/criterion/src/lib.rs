#![warn(missing_docs)]

//! Offline shim for the `criterion` benchmark harness.
//!
//! Provides the `Criterion` / benchmark-group / `Bencher` surface the
//! workspace's benches use, with a simple measured loop instead of
//! criterion's statistical machinery: each benchmark is warmed up, then
//! timed over enough iterations to fill a short window, and the median
//! per-iteration time is printed as `name/bench: <t> ns/iter`.

use std::time::{Duration, Instant};

/// How batched inputs are grouped (accepted for API compatibility; the
/// shim re-runs the setup closure per iteration regardless).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Re-export for benches importing it from criterion rather than std.
pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function("", f);
        group.finish();
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples (criterion API compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measures one benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        let mut bencher = Bencher {
            samples_ns: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let label = if name.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, name)
        };
        match bencher.median_ns() {
            Some(ns) => println!("{label}: {ns:.1} ns/iter"),
            None => println!("{label}: no measurement"),
        }
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Times closures passed by the benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples_ns: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f` repeatedly.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        self.run_samples(|| {
            let start = Instant::now();
            black_box(f());
            start.elapsed()
        });
    }

    /// Times `f` over inputs produced by `setup`; setup time is excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut f: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        self.run_samples(|| {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            start.elapsed()
        });
    }

    /// Collects `sample_size` timed samples after a short warm-up, scaling
    /// iterations so that timer resolution does not dominate.
    fn run_samples(&mut self, mut one: impl FnMut() -> Duration) {
        // Warm-up.
        let mut warm = Duration::ZERO;
        let mut warm_iters = 0u32;
        while warm < Duration::from_millis(20) && warm_iters < 10_000 {
            warm += one();
            warm_iters += 1;
        }
        let per_iter = warm.checked_div(warm_iters.max(1)).unwrap_or_default();
        // Aim each sample at ~2 ms of work.
        let iters = if per_iter.is_zero() {
            1_000
        } else {
            (Duration::from_millis(2).as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000)
                as u32
        };
        for _ in 0..self.sample_size {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                total += one();
            }
            self.samples_ns
                .push(total.as_nanos() as f64 / f64::from(iters));
        }
    }

    fn median_ns(&self) -> Option<f64> {
        if self.samples_ns.is_empty() {
            return None;
        }
        let mut s = self.samples_ns.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Some(s[s.len() / 2])
    }
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` from [`criterion_group!`] outputs.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_measure_and_print() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("iter", |b| b.iter(|| black_box(3u64).wrapping_mul(7)));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
