#![warn(missing_docs)]

//! Offline shim for the `rand` crate.
//!
//! Implements exactly the surface this workspace uses — a seedable
//! deterministic generator ([`rngs::StdRng`], xoshiro256++ seeded through
//! SplitMix64) plus the [`RngExt`] extension trait providing
//! `random::<T>()` and `random_range(range)`. Everything is reproducible:
//! the same seed yields the same stream on every platform and thread count.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not the cryptographic ChaCha12 of real `rand`, but statistically
    /// strong, tiny, and — the property the experiments rely on — fully
    /// deterministic under `seed_from_u64`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// SplitMix64 step, used to expand a 64-bit seed into the full state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable uniformly from an [`RngCore`].
pub trait Random: Sized {
    /// Draws one uniform value.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable uniformly (the argument of [`RngExt::random_range`]).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::random_from(rng) * (self.end - self.start)
    }
}

/// Extension methods on any generator (the `rand 0.9` `Rng` surface the
/// workspace imports as `RngExt`).
pub trait RngExt: RngCore {
    /// Draws one uniform value of type `T`.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random_from(self)
    }

    /// Draws one value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// `rand 0.9` names this trait `Rng`; keep that alias so either import works.
pub use RngExt as Rng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_sampling_hits_bounds_only_inside() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..5_000 {
            let v: i16 = rng.random_range(-128i16..=127);
            assert!((-128..=127).contains(&v));
            seen_lo |= v == -128;
            seen_hi |= v == 127;
        }
        assert!(seen_lo && seen_hi, "inclusive bounds must be reachable");
    }
}
